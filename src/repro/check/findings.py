{
  "boundaries": [
    "repro.obs.tracer.Tracer.__init__",
    "repro.runner.cache.ResultCache.put",
    "repro.runner.journal.RunJournal.__init__",
    "repro.runner.journal.RunJournal.event"
  ],
  "dispatch_roots": {
    "repro.analysis.experiments._unit_ablation": "src/repro/analysis/experiments.py:847 via fn",
    "repro.analysis.experiments._unit_fault_cell": "src/repro/analysis/experiments.py:893 via fn",
    "repro.analysis.experiments._unit_fig10": "src/repro/analysis/experiments.py:537 via fn",
    "repro.analysis.experiments._unit_fig11": "src/repro/analysis/experiments.py:618 via fn",
    "repro.analysis.experiments._unit_fig12": "src/repro/analysis/experiments.py:686 via fn",
    "repro.analysis.experiments._unit_fig2": "src/repro/analysis/experiments.py:219 via fn",
    "repro.analysis.experiments._unit_fig4": "src/repro/analysis/experiments.py:277 via fn",
    "repro.analysis.experiments._unit_fig6": "src/repro/analysis/experiments.py:347 via fn",
    "repro.analysis.experiments._unit_fig7": "src/repro/analysis/experiments.py:399 via fn",
    "repro.analysis.experiments._unit_fig9": "src/repro/analysis/experiments.py:466 via fn",
    "repro.analysis.experiments._unit_pressure_cell": "src/repro/analysis/experiments.py:958 via fn",
    "repro.analysis.experiments._unit_sec7": "src/repro/analysis/experiments.py:1026 via fn",
    "repro.analysis.experiments._unit_tab2": "src/repro/analysis/experiments.py:758 via fn",
    "repro.check.driver.lint_file_detail": "src/repro/check/driver.py:266 via starmap",
    "repro.runner.executor._worker": "src/repro/runner/executor.py:219 via Process"
  },
  "functions": [
    {
      "calls": [],
      "dispatches": [],
      "line": 8,
      "path": "src/repro/_util.py",
      "qual": "repro._util.stable_seed"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 117,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._invoke"
    },
    {
      "calls": [
        "repro.analysis.__main__._invoke",
        "repro.analysis.report.render",
        "repro.runner.executor.Runner.__init__"
      ],
      "dispatches": [],
      "line": 408,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._legacy_command"
    },
    {
      "calls": [
        "repro.check.driver.LintReport.render",
        "repro.check.driver.repo_root",
        "repro.check.driver.run_lint",
        "repro.check.driver.write_baseline",
        "repro.check.findings.to_sarif",
        "repro.check.flow.rules.flow_rule_ids",
        "repro.check.rules.all_rules"
      ],
      "dispatches": [],
      "line": 337,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._lint_command"
    },
    {
      "calls": [
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.render",
        "repro.inject.campaign.CellOutcome.as_row",
        "repro.pressure.campaign.PressureCampaign.__init__",
        "repro.pressure.campaign.PressureCampaign.run",
        "repro.pressure.campaign.PressureCellOutcome.as_row",
        "repro.pressure.campaign.parse_pressure_spec",
        "repro.pressure.campaign.pressure_cell"
      ],
      "dispatches": [],
      "line": 437,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._pressure_command"
    },
    {
      "calls": [
        "repro.analysis.__main__._invoke",
        "repro.analysis.report.render",
        "repro.inject.faults.parse_fault_spec",
        "repro.runner.cache.ResultCache.__init__",
        "repro.runner.executor.Runner.__init__",
        "repro.runner.executor.timing_table",
        "repro.runner.journal.RunJournal.__init__",
        "repro.runner.journal.RunJournal.event",
        "repro.runner.journal.find_interrupted"
      ],
      "dispatches": [],
      "line": 125,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._run_command"
    },
    {
      "calls": [
        "repro.analysis.__main__._trace_command._suffixed",
        "repro.analysis.experiments.ExperimentScale.sim",
        "repro.obs.export.summary",
        "repro.obs.export.timeline_csv",
        "repro.obs.export.write_chrome_trace",
        "repro.obs.timeline.build_timeline",
        "repro.obs.tracer.Tracer.__init__",
        "repro.simulation.simulator.simulate"
      ],
      "dispatches": [],
      "line": 261,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._trace_command"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 311,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__._trace_command._suffixed"
    },
    {
      "calls": [
        "repro.analysis.__main__._legacy_command",
        "repro.analysis.__main__._lint_command",
        "repro.analysis.__main__._pressure_command",
        "repro.analysis.__main__._run_command",
        "repro.analysis.__main__._trace_command",
        "repro.analysis.bench.main",
        "repro.results.cli.compare_main",
        "repro.results.cli.index_main"
      ],
      "dispatches": [],
      "line": 526,
      "path": "src/repro/analysis/__main__.py",
      "qual": "repro.analysis.__main__.main"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 68,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench._best_of"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 58,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench._checksum"
    },
    {
      "calls": [
        "repro.analysis.bench.validate_document"
      ],
      "dispatches": [],
      "line": 227,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench._load_baseline"
    },
    {
      "calls": [
        "repro.analysis.bench._best_of",
        "repro.analysis.bench._checksum",
        "repro.compression.vector.batch.BatchCompressor.__init__",
        "repro.compression.vector.batch.BatchCompressor.batch_compress",
        "repro.compression.vector.batch.BatchCompressor.batch_size_bits"
      ],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.bench_algorithm"
    },
    {
      "calls": [
        "repro.analysis.bench.find_regressions.usable",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 167,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.find_regressions"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 176,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.find_regressions.usable"
    },
    {
      "calls": [
        "repro.analysis.bench._load_baseline",
        "repro.analysis.bench.find_regressions",
        "repro.analysis.bench.render_table",
        "repro.analysis.bench.run_bench",
        "repro.compression.vector.batch.vectorized_algorithms",
        "repro.runner.cache.ResultCache.get",
        "repro.runner.journal.RunJournal.__init__",
        "repro.runner.journal.RunJournal.event"
      ],
      "dispatches": [],
      "line": 240,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.main"
    },
    {
      "calls": [
        "repro.workloads.datagen.make_line"
      ],
      "dispatches": [],
      "line": 48,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.make_corpus"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 209,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.render_table"
    },
    {
      "calls": [
        "repro.analysis.bench.bench_algorithm",
        "repro.analysis.bench.make_corpus",
        "repro.compression.vector.batch.vectorized_algorithms"
      ],
      "dispatches": [],
      "line": 113,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.run_bench"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/analysis/bench.py",
      "qual": "repro.analysis.bench.validate_document"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 98,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.ExperimentScale.sim"
    },
    {
      "calls": [
        "repro.compression.bpc.BPCCompressor.__init__",
        "repro.core.lcp.LCPPack.__init__"
      ],
      "dispatches": [],
      "line": 157,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._fig2_combos"
    },
    {
      "calls": [
        "repro.compression.zero.is_zero_line",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 168,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._line_size"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._profiles"
    },
    {
      "calls": [
        "repro.runner.executor.Runner.__init__",
        "repro.runner.executor.Runner.map"
      ],
      "dispatches": [],
      "line": 119,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._run_units"
    },
    {
      "calls": [
        "repro.analysis.experiments.ExperimentScale.sim",
        "repro.obs.tracer.Tracer.__init__",
        "repro.simulation.simulator.simulate"
      ],
      "dispatches": [],
      "line": 293,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._simulate_with_config"
    },
    {
      "calls": [
        "repro.core.stats.ControllerStats.metadata_hit_rate",
        "repro.core.stats.ControllerStats.relative_extra_accesses"
      ],
      "dispatches": [],
      "line": 132,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._stats_summary"
    },
    {
      "calls": [
        "repro.analysis.experiments._line_size",
        "repro.analysis.experiments._profiles",
        "repro.analysis.experiments._simulate_with_config",
        "repro.analysis.experiments._stats_summary",
        "repro.compression.bpc.BPCCompressor.__init__",
        "repro.core.config.compresso_config",
        "repro.core.linepack.LinePack.pack",
        "repro.core.linepack.split_access_fraction",
        "repro.workloads.tracegen.Workload.__init__",
        "repro.workloads.tracegen.Workload.page_lines"
      ],
      "dispatches": [],
      "line": 788,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_ablation"
    },
    {
      "calls": [
        "repro.inject.campaign.CellOutcome.as_row",
        "repro.inject.campaign.campaign_cell",
        "repro.pressure.campaign.PressureCellOutcome.as_row"
      ],
      "dispatches": [],
      "line": 865,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fault_cell"
    },
    {
      "calls": [
        "repro.analysis.experiments.ExperimentScale.sim",
        "repro.analysis.experiments._stats_summary",
        "repro.energy.model.EnergyModel.relative",
        "repro.simulation.capacity.CapacityResult.relative",
        "repro.simulation.capacity.capacity_impact",
        "repro.simulation.simulator.simulate"
      ],
      "dispatches": [],
      "line": 480,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig10"
    },
    {
      "calls": [
        "repro.analysis.experiments.ExperimentScale.sim",
        "repro.analysis.experiments._stats_summary",
        "repro.energy.model.EnergyModel.relative",
        "repro.simulation.capacity.CapacityResult.relative",
        "repro.simulation.capacity.multicore_capacity_impact",
        "repro.simulation.multicore.simulate_multicore",
        "repro.workloads.mixes.mix_profiles"
      ],
      "dispatches": [],
      "line": 562,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig11"
    },
    {
      "calls": [
        "repro.analysis.experiments.ExperimentScale.sim",
        "repro.analysis.experiments._stats_summary",
        "repro.energy.model.EnergyModel.__init__",
        "repro.energy.model.EnergyModel.evaluate",
        "repro.energy.model.EnergyModel.relative",
        "repro.simulation.simulator.simulate"
      ],
      "dispatches": [],
      "line": 641,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig12"
    },
    {
      "calls": [
        "repro.analysis.experiments._fig2_combos",
        "repro.analysis.experiments._line_size",
        "repro.core.lcp.LCPPack.pack",
        "repro.core.linepack.LinePack.pack",
        "repro.core.packing.PackingScheme.pack",
        "repro.workloads.tracegen.Workload.__init__",
        "repro.workloads.tracegen.Workload.page_lines"
      ],
      "dispatches": [],
      "line": 178,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig2"
    },
    {
      "calls": [
        "repro.analysis.experiments._simulate_with_config",
        "repro.analysis.experiments._stats_summary",
        "repro.core.stats.ControllerStats.breakdown",
        "repro.core.stats.ControllerStats.relative_extra_accesses",
        "repro.simulation.configs.chunk_vs_variable_configs"
      ],
      "dispatches": [],
      "line": 236,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig4"
    },
    {
      "calls": [
        "repro.analysis.experiments._simulate_with_config",
        "repro.analysis.experiments._stats_summary",
        "repro.core.stats.ControllerStats.relative_extra_accesses",
        "repro.simulation.configs.optimization_ladder"
      ],
      "dispatches": [],
      "line": 309,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig6"
    },
    {
      "calls": [
        "repro.analysis.experiments._simulate_with_config",
        "repro.analysis.experiments._stats_summary",
        "repro.core.config.compresso_config"
      ],
      "dispatches": [],
      "line": 363,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig7"
    },
    {
      "calls": [
        "repro.analysis.report.arithmetic_mean",
        "repro.simulation.compresspoints.PointSelection.estimate_ratio",
        "repro.simulation.compresspoints.profile_intervals",
        "repro.simulation.compresspoints.representativeness_error",
        "repro.simulation.compresspoints.select_points"
      ],
      "dispatches": [],
      "line": 414,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_fig9"
    },
    {
      "calls": [
        "repro.inject.campaign.CellOutcome.as_row",
        "repro.pressure.campaign.PressureCellOutcome.as_row",
        "repro.pressure.campaign.pressure_cell"
      ],
      "dispatches": [],
      "line": 916,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_pressure_cell"
    },
    {
      "calls": [
        "repro.energy.area.AdderModel.visible_cycles",
        "repro.energy.area.offset_adder_for_bins",
        "repro.energy.model.EnergyConstants.sanity_fractions"
      ],
      "dispatches": [],
      "line": 985,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_sec7"
    },
    {
      "calls": [
        "repro.analysis.experiments.ExperimentScale.sim",
        "repro.analysis.experiments._stats_summary",
        "repro.energy.model.EnergyModel.relative",
        "repro.simulation.capacity.CapacityResult.relative",
        "repro.simulation.capacity.capacity_impact",
        "repro.simulation.simulator.simulate"
      ],
      "dispatches": [],
      "line": 702,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments._unit_tab2"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_ablation",
        "repro.analysis.report.ExperimentResult.add_row"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_ablation"
      ],
      "line": 833,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_ablation_design_space"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fault_cell",
        "repro.analysis.report.ExperimentResult.add_row"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fault_cell"
      ],
      "line": 876,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_faults"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig10",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.arithmetic_mean",
        "repro.analysis.report.geometric_mean",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig10"
      ],
      "line": 516,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig10"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig11",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.arithmetic_mean",
        "repro.analysis.report.geometric_mean"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig11"
      ],
      "line": 600,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig11"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig12",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.ExperimentResult.column_values",
        "repro.analysis.report.arithmetic_mean"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig12"
      ],
      "line": 672,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig12"
    },
    {
      "calls": [
        "repro.analysis.experiments._fig2_combos",
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig2",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.ExperimentResult.column_values",
        "repro.analysis.report.arithmetic_mean"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig2"
      ],
      "line": 204,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig2"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig4",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.ExperimentResult.column_values",
        "repro.analysis.report.arithmetic_mean"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig4"
      ],
      "line": 266,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig4"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig6",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.ExperimentResult.column_values",
        "repro.analysis.report.arithmetic_mean",
        "repro.simulation.configs.optimization_ladder"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig6"
      ],
      "line": 334,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig6"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig7",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.ExperimentResult.column_values",
        "repro.analysis.report.arithmetic_mean"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig7"
      ],
      "line": 389,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig7"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_fig9",
        "repro.analysis.report.ExperimentResult.add_row"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_fig9"
      ],
      "line": 452,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_fig9"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_pressure_cell",
        "repro.analysis.report.ExperimentResult.add_row"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_pressure_cell"
      ],
      "line": 937,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_pressure"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_sec7",
        "repro.analysis.report.ExperimentResult.add_row"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_sec7"
      ],
      "line": 1011,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_sec7_energy_area"
    },
    {
      "calls": [
        "repro.analysis.experiments._run_units",
        "repro.analysis.experiments._unit_tab2",
        "repro.analysis.report.ExperimentResult.add_row",
        "repro.analysis.report.arithmetic_mean"
      ],
      "dispatches": [
        "repro.analysis.experiments._unit_tab2"
      ],
      "line": 741,
      "path": "src/repro/analysis/experiments.py",
      "qual": "repro.analysis.experiments.run_tab2"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 38,
      "path": "src/repro/analysis/export.py",
      "qual": "repro.analysis.export.to_csv"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 20,
      "path": "src/repro/analysis/export.py",
      "qual": "repro.analysis.export.to_json"
    },
    {
      "calls": [
        "repro.analysis.export.to_csv",
        "repro.analysis.export.to_json"
      ],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/analysis/export.py",
      "qual": "repro.analysis.export.write_result"
    },
    {
      "calls": [
        "repro.analysis.export.write_result"
      ],
      "dispatches": [],
      "line": 64,
      "path": "src/repro/analysis/export.py",
      "qual": "repro.analysis.export.write_results"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 27,
      "path": "src/repro/analysis/report.py",
      "qual": "repro.analysis.report.ExperimentResult.add_row"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/analysis/report.py",
      "qual": "repro.analysis.report.ExperimentResult.column_values"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 35,
      "path": "src/repro/analysis/report.py",
      "qual": "repro.analysis.report._format"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/analysis/report.py",
      "qual": "repro.analysis.report.arithmetic_mean"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 71,
      "path": "src/repro/analysis/report.py",
      "qual": "repro.analysis.report.geometric_mean"
    },
    {
      "calls": [
        "repro.analysis.report._format",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 41,
      "path": "src/repro/analysis/report.py",
      "qual": "repro.analysis.report.render"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.Cache.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.Cache._locate"
    },
    {
      "calls": [
        "repro.cache.cache.Cache._locate"
      ],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.Cache.access"
    },
    {
      "calls": [
        "repro.cache.cache.Cache._locate"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.Cache.contains"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.clear"
      ],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.Cache.flush"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 24,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.CacheStats.accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 27,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.CacheStats.hit_rate"
    },
    {
      "calls": [
        "repro.cache.cache.CacheStats.hit_rate"
      ],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/cache/cache.py",
      "qual": "repro.cache.cache.CacheStats.miss_rate"
    },
    {
      "calls": [
        "repro.cache.cache.Cache.__init__"
      ],
      "dispatches": [],
      "line": 43,
      "path": "src/repro/cache/hierarchy.py",
      "qual": "repro.cache.hierarchy.CacheHierarchy.__init__"
    },
    {
      "calls": [
        "repro.cache.cache.Cache.access",
        "repro.cache.hierarchy.CacheHierarchy._spill"
      ],
      "dispatches": [],
      "line": 69,
      "path": "src/repro/cache/hierarchy.py",
      "qual": "repro.cache.hierarchy.CacheHierarchy._spill"
    },
    {
      "calls": [
        "repro.cache.cache.Cache.access",
        "repro.cache.hierarchy.CacheHierarchy._spill",
        "repro.cache.hierarchy.CacheHierarchy.access",
        "repro.core.metadata_cache.MetadataCache.access",
        "repro.memory.dram.DDR4Channel.access",
        "repro.memory.dram.DRAMSystem.access"
      ],
      "dispatches": [],
      "line": 51,
      "path": "src/repro/cache/hierarchy.py",
      "qual": "repro.cache.hierarchy.CacheHierarchy.access"
    },
    {
      "calls": [
        "repro.cache.cache.Cache.flush",
        "repro.cache.hierarchy.CacheHierarchy._spill",
        "repro.cache.hierarchy.CacheHierarchy.flush",
        "repro.core.metadata_cache.MetadataCache.flush"
      ],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/cache/hierarchy.py",
      "qual": "repro.cache.hierarchy.CacheHierarchy.flush"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 93,
      "path": "src/repro/cache/hierarchy.py",
      "qual": "repro.cache.hierarchy.CacheHierarchy.stats"
    },
    {
      "calls": [
        "repro.check.rules.dotted_name"
      ],
      "dispatches": [],
      "line": 298,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.BareExceptRule._broad"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 303,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.BareExceptRule._swallows"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 279,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.BareExceptRule.applies_to"
    },
    {
      "calls": [
        "repro.check.builtin_rules.BareExceptRule._broad",
        "repro.check.builtin_rules.BareExceptRule._swallows",
        "repro.check.rules.ModuleSource.finding",
        "repro.check.rules.dotted_name"
      ],
      "dispatches": [],
      "line": 282,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.BareExceptRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 550,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.ConfigKnobDocumentedRule._docs_text"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 561,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.ConfigKnobDocumentedRule._field_lines"
    },
    {
      "calls": [
        "repro.check.builtin_rules.ConfigKnobDocumentedRule._docs_text",
        "repro.check.builtin_rules.ConfigKnobDocumentedRule._field_lines"
      ],
      "dispatches": [],
      "line": 534,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.ConfigKnobDocumentedRule.check_project"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 370,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.DegradedTransitionTracedRule._mutates_state"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 367,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.DegradedTransitionTracedRule.applies_to"
    },
    {
      "calls": [
        "repro.check.builtin_rules.DegradedTransitionTracedRule._mutates_state",
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 383,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.DegradedTransitionTracedRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 458,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.DocLinksRule.check_project"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 118,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.EmitRegisteredRule.applies_to"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 121,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.EmitRegisteredRule.check"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 199,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.HotPathWallClockRule.applies_to"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.finding",
        "repro.check.rules.dotted_name"
      ],
      "dispatches": [],
      "line": 202,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.HotPathWallClockRule.check"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 154,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.JournalEventRegisteredRule.applies_to"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 157,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.JournalEventRegisteredRule.check"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 59,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.ModuleDocstringRule.applies_to"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 62,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.ModuleDocstringRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 250,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.MutableDefaultRule._is_mutable"
    },
    {
      "calls": [
        "repro.check.builtin_rules.MutableDefaultRule._is_mutable",
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 235,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.MutableDefaultRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 500,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.PackageDocLinkRule.check_project"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 326,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.RecoveryTracedRule.applies_to"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 329,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.RecoveryTracedRule.check"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.StatsEmitRule.applies_to"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.finding",
        "repro.check.rules.dotted_name"
      ],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.StatsEmitRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 441,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.StatsFieldExistsRule._known_attrs"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.in_dirs"
      ],
      "dispatches": [],
      "line": 419,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.StatsFieldExistsRule.applies_to"
    },
    {
      "calls": [
        "repro.check.builtin_rules.StatsFieldExistsRule._known_attrs",
        "repro.check.rules.ModuleSource.finding"
      ],
      "dispatches": [],
      "line": 422,
      "path": "src/repro/check/builtin_rules.py",
      "qual": "repro.check.builtin_rules.StatsFieldExistsRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 71,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.LintReport.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.LintReport.errors"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.LintReport.exit_code"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 84,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.LintReport.ok"
    },
    {
      "calls": [
        "repro.check.findings.format_finding"
      ],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.LintReport.render"
    },
    {
      "calls": [
        "repro.check.driver._baseline_key",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 179,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver._apply_baseline"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 174,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver._baseline_key"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.__init__"
      ],
      "dispatches": [],
      "line": 327,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver._module_for"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 211,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver._stale_suppression_findings"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 57,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.discover_files"
    },
    {
      "calls": [
        "repro.check.driver.lint_file_detail"
      ],
      "dispatches": [],
      "line": 151,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.lint_file"
    },
    {
      "calls": [
        "repro.check.rules.ModuleSource.__init__",
        "repro.check.rules.ModuleSource.suppressed",
        "repro.check.rules.get_rule"
      ],
      "dispatches": [],
      "line": 116,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.lint_file_detail"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 158,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.load_baseline"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 48,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.repo_root"
    },
    {
      "calls": [
        "repro.check.builtin_rules.ConfigKnobDocumentedRule.check_project",
        "repro.check.builtin_rules.DocLinksRule.check_project",
        "repro.check.builtin_rules.PackageDocLinkRule.check_project",
        "repro.check.driver.LintReport.__init__",
        "repro.check.driver._apply_baseline",
        "repro.check.driver._module_for",
        "repro.check.driver._stale_suppression_findings",
        "repro.check.driver.discover_files",
        "repro.check.driver.lint_file_detail",
        "repro.check.driver.load_baseline",
        "repro.check.driver.repo_root",
        "repro.check.flow.engine.FlowProgram.__init__",
        "repro.check.flow.engine.FlowProgram.dump_callgraph",
        "repro.check.flow.engine.FlowProgram.unconsumed_annotations",
        "repro.check.flow.rules.DeterminismTaintRule.check_flow",
        "repro.check.flow.rules.ExceptionEscapeRule.check_flow",
        "repro.check.flow.rules.FlowRule.check_flow",
        "repro.check.flow.rules.SharedStateRaceRule.check_flow",
        "repro.check.rules.ModuleSource.suppressed",
        "repro.check.rules.ProjectRule.check_project",
        "repro.check.rules.all_rules",
        "repro.check.rules.get_rule"
      ],
      "dispatches": [
        "repro.check.driver.lint_file_detail"
      ],
      "line": 240,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.run_lint"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 166,
      "path": "src/repro/check/driver.py",
      "qual": "repro.check.driver.write_baseline"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 29,
      "path": "src/repro/check/findings.py",
      "qual": "repro.check.findings.Finding.__post_init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 34,
      "path": "src/repro/check/findings.py",
      "qual": "repro.check.findings.format_finding"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 40,
      "path": "src/repro/check/findings.py",
      "qual": "repro.check.findings.to_sarif"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer.__init__",
        "repro.check.flow.callgraph._FunctionAnalyzer.run"
      ],
      "dispatches": [],
      "line": 149,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph.CallGraph.__init__"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.callees",
        "repro.check.flow.callgraph.FunctionFacts.callees",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 156,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph.CallGraph.callees"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.callees",
        "repro.check.flow.callgraph.FunctionFacts.callees"
      ],
      "dispatches": [],
      "line": 160,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph.CallGraph.dump"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph.FunctionFacts.callees"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 184,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 609,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._callee_params"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._callee_params",
        "repro.check.flow.callgraph._FunctionAnalyzer._record_dispatch_arg"
      ],
      "dispatches": [],
      "line": 577,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._check_dispatch"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._shared_owner"
      ],
      "dispatches": [],
      "line": 539,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._check_mutator_call"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 454,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._check_ordering_key"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 480,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._check_set_iteration"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._check_write_target",
        "repro.check.flow.callgraph._FunctionAnalyzer._shared_owner",
        "repro.check.flow.callgraph._FunctionAnalyzer._type_of",
        "repro.check.flow.symbols._dotted",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 506,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._check_write_target"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._check_mutator_call",
        "repro.check.flow.callgraph._FunctionAnalyzer._check_write_target"
      ],
      "dispatches": [],
      "line": 494,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._check_writes"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._maybe_type_local",
        "repro.check.flow.callgraph._pruned_walk"
      ],
      "dispatches": [],
      "line": 216,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._collect_locals"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._resolve",
        "repro.check.flow.symbols._annotation_names"
      ],
      "dispatches": [],
      "line": 204,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._collect_param_types"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._check_dispatch",
        "repro.check.flow.callgraph._FunctionAnalyzer._check_ordering_key",
        "repro.check.flow.callgraph._FunctionAnalyzer._resolve_call"
      ],
      "dispatches": [],
      "line": 369,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._handle_call"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 350,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._handle_name_ref"
    },
    {
      "calls": [
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 308,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._handler_names"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._resolve",
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 237,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._maybe_type_local"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve",
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 623,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._record_dispatch_arg"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._covered",
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 320,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._record_raise"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve"
      ],
      "dispatches": [],
      "line": 446,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._resolve"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._type_of",
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve",
        "repro.check.flow.symbols.SymbolTable.resolve_method",
        "repro.check.flow.symbols._dotted",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 378,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._resolve_call"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve",
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 550,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._shared_owner"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._resolve",
        "repro.check.flow.callgraph._FunctionAnalyzer._type_of",
        "repro.check.flow.symbols.SymbolTable.mro",
        "repro.check.flow.symbols._dotted",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 424,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._type_of"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._visit_stmt"
      ],
      "dispatches": [],
      "line": 249,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._visit_block"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._handle_call",
        "repro.check.flow.callgraph._FunctionAnalyzer._handle_name_ref",
        "repro.check.flow.callgraph._pruned_walk"
      ],
      "dispatches": [],
      "line": 340,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._visit_expr_tree"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._check_set_iteration",
        "repro.check.flow.callgraph._FunctionAnalyzer._check_writes",
        "repro.check.flow.callgraph._FunctionAnalyzer._handler_names",
        "repro.check.flow.callgraph._FunctionAnalyzer._record_raise",
        "repro.check.flow.callgraph._FunctionAnalyzer._visit_block",
        "repro.check.flow.callgraph._FunctionAnalyzer._visit_expr_tree"
      ],
      "dispatches": [],
      "line": 254,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer._visit_stmt"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer._collect_locals",
        "repro.check.flow.callgraph._FunctionAnalyzer._collect_param_types",
        "repro.check.flow.callgraph._FunctionAnalyzer._visit_block"
      ],
      "dispatches": [],
      "line": 197,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._FunctionAnalyzer.run"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 648,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._covered"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 655,
      "path": "src/repro/check/flow/callgraph.py",
      "qual": "repro.check.flow.callgraph._pruned_walk"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.__init__",
        "repro.check.flow.symbols.SymbolTable.build"
      ],
      "dispatches": [],
      "line": 33,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.__init__"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.annotation_at"
      ],
      "dispatches": [],
      "line": 42,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.boundaries"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 139,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.dispatch_roots"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.dump",
        "repro.check.flow.engine.FlowProgram.dispatch_roots"
      ],
      "dispatches": [],
      "line": 181,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.dump_callgraph"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.callees",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 57,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.propagate"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._covered",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 107,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.raises_fixpoint"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.callees"
      ],
      "dispatches": [],
      "line": 150,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.reachable_from"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 168,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.unconsumed_annotations"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.callees",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/check/flow/engine.py",
      "qual": "repro.check.flow.engine.FlowProgram.witness_path"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 160,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.DeterminismTaintRule._own_sinks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.DeterminismTaintRule._own_sources"
    },
    {
      "calls": [
        "repro.check.flow.callgraph.CallGraph.callees",
        "repro.check.flow.engine.FlowProgram.propagate",
        "repro.check.flow.engine.FlowProgram.witness_path",
        "repro.check.flow.rules.DeterminismTaintRule._own_sinks",
        "repro.check.flow.rules.DeterminismTaintRule._own_sources",
        "repro.check.flow.rules._short",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 104,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.DeterminismTaintRule.check_flow"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._covered",
        "repro.check.flow.engine.FlowProgram.raises_fixpoint",
        "repro.check.flow.rules._short",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 289,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.ExceptionEscapeRule.check_flow"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.FlowRule.applies_to"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 83,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.FlowRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.FlowRule.check_flow"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 204,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.SharedStateRaceRule._trusted_sites"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.annotation_at"
      ],
      "dispatches": [],
      "line": 257,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.SharedStateRaceRule._waived"
    },
    {
      "calls": [
        "repro.check.flow.engine.FlowProgram.reachable_from",
        "repro.check.flow.rules.SharedStateRaceRule._trusted_sites",
        "repro.check.flow.rules.SharedStateRaceRule._waived",
        "repro.check.flow.rules._short",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 213,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.SharedStateRaceRule.check_flow"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 90,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules._short"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 331,
      "path": "src/repro/check/flow/rules.py",
      "qual": "repro.check.flow.rules.flow_rule_ids"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 151,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.__init__"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable._add_function",
        "repro.check.flow.symbols._annotation_names",
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 275,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._add_class"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable._collect_annotations",
        "repro.check.flow.symbols.SymbolTable._collect_definitions",
        "repro.check.flow.symbols.SymbolTable._collect_imports",
        "repro.check.flow.symbols.module_name"
      ],
      "dispatches": [],
      "line": 172,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._add_file"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 246,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._add_function"
    },
    {
      "calls": [
        "repro.check.flow.symbols._is_mutable_value"
      ],
      "dispatches": [],
      "line": 300,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._add_global"
    },
    {
      "calls": [
        "repro.check.flow.symbols.comment_tokens"
      ],
      "dispatches": [],
      "line": 191,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._collect_annotations"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable._add_class",
        "repro.check.flow.symbols.SymbolTable._add_function",
        "repro.check.flow.symbols.SymbolTable._add_global"
      ],
      "dispatches": [],
      "line": 235,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._collect_definitions"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable._import_base"
      ],
      "dispatches": [],
      "line": 200,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._collect_imports"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable._infer_init_attr_types",
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve"
      ],
      "dispatches": [],
      "line": 316,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._finalize"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 219,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._import_base"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.check.flow.symbols.SymbolTable.resolve",
        "repro.check.flow.symbols._annotation_names",
        "repro.check.flow.symbols._dotted",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 345,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable._infer_init_attr_types"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 446,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.all_subclasses"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 477,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.annotation_at"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable._add_file",
        "repro.check.flow.symbols.SymbolTable._finalize"
      ],
      "dispatches": [],
      "line": 165,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.build"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.canonicalize",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 406,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.canonicalize"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 434,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.mro"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 385,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.resolve"
    },
    {
      "calls": [
        "repro.check.flow.symbols.SymbolTable.all_subclasses",
        "repro.check.flow.symbols.SymbolTable.mro"
      ],
      "dispatches": [],
      "line": 456,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.SymbolTable.resolve_method"
    },
    {
      "calls": [
        "repro.check.flow.symbols._annotation_names",
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 500,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols._annotation_names"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 489,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols._dotted"
    },
    {
      "calls": [
        "repro.check.flow.symbols._dotted"
      ],
      "dispatches": [],
      "line": 522,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols._is_mutable_value"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 43,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.comment_tokens"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 136,
      "path": "src/repro/check/flow/symbols.py",
      "qual": "repro.check.flow.symbols.module_name"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 56,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 118,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.finding"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 113,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.in_dirs"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 109,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.suppressed"
    },
    {
      "calls": [
        "repro.check.flow.symbols.comment_tokens",
        "repro.check.rules.SuppressionComment.__init__"
      ],
      "dispatches": [],
      "line": 74,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.suppression_comments"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 93,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.suppressions"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 67,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ModuleSource.tree"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 148,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ProjectRule.applies_to"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 151,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ProjectRule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 155,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.ProjectRule.check_project"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.Rule.applies_to"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 139,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.Rule.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 42,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.SuppressionComment.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.SuppressionComment.covered_lines"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 189,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules._ensure_builtins"
    },
    {
      "calls": [
        "repro.check.rules._ensure_builtins"
      ],
      "dispatches": [],
      "line": 173,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.all_rules"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 202,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.dotted_name"
    },
    {
      "calls": [
        "repro.check.rules._ensure_builtins"
      ],
      "dispatches": [],
      "line": 179,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.get_rule"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 162,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.register"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 195,
      "path": "src/repro/check/rules.py",
      "qual": "repro.check.rules.walk_calls"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 61,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.InvariantViolation.__str__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 75,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.__init__"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report",
        "repro.memory.allocator.ChunkAllocator.owned_chunks"
      ],
      "dispatches": [],
      "line": 285,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._check_chunk_ownership"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report",
        "repro.compression.base.CompressedLine.size_bytes",
        "repro.core.controller._SizeCache.size_bytes"
      ],
      "dispatches": [],
      "line": 128,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._check_data"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report",
        "repro.core.lcp.LCPPack.layout_from_bins",
        "repro.core.linepack.LinePack.layout_from_bins",
        "repro.core.packing.PackingScheme.layout_from_bins"
      ],
      "dispatches": [],
      "line": 192,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._check_layout"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report"
      ],
      "dispatches": [],
      "line": 146,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._check_metadata"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report",
        "repro.memory.allocator.VariableAllocator.owned_regions"
      ],
      "dispatches": [],
      "line": 307,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._check_region_ownership"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report"
      ],
      "dispatches": [],
      "line": 262,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._check_uncompressed"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 374,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer._report"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer.check_allocator",
        "repro.check.sanitizer.MemorySanitizer.check_metadata_cache",
        "repro.check.sanitizer.MemorySanitizer.check_page",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.after_op"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer.check_allocator",
        "repro.check.sanitizer.MemorySanitizer.check_allocator_books",
        "repro.check.sanitizer.MemorySanitizer.check_metadata_cache",
        "repro.check.sanitizer.MemorySanitizer.check_page"
      ],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.check_all"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._check_chunk_ownership",
        "repro.check.sanitizer.MemorySanitizer._check_region_ownership"
      ],
      "dispatches": [],
      "line": 279,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.check_allocator"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report",
        "repro.memory.allocator.ChunkAllocator.check_books",
        "repro.memory.allocator.VariableAllocator.check_books"
      ],
      "dispatches": [],
      "line": 363,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.check_allocator_books"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._report",
        "repro.core.metadata_cache.MetadataCache.entry_items",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 341,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.check_metadata_cache"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer._check_data",
        "repro.check.sanitizer.MemorySanitizer._check_layout",
        "repro.check.sanitizer.MemorySanitizer._check_metadata",
        "repro.check.sanitizer.MemorySanitizer._check_uncompressed",
        "repro.check.sanitizer.MemorySanitizer._report"
      ],
      "dispatches": [],
      "line": 110,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.check_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 105,
      "path": "src/repro/check/sanitizer.py",
      "qual": "repro.check.sanitizer.MemorySanitizer.violation_count"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 44,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.CompressedLine.ratio"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 39,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.CompressedLine.size_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 57,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor._check_input"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor._check_line"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.compress",
        "repro.compression.bdi.BDICompressor.compress",
        "repro.compression.bpc.BPCCompressor.compress",
        "repro.compression.cpack.CPackCompressor.compress",
        "repro.compression.fpc.FPCCompressor.compress",
        "repro.compression.lz.LZCompressor.compress",
        "repro.compression.selector.BestOfCompressor.compress",
        "repro.compression.zero.ZeroCompressor.compress"
      ],
      "dispatches": [],
      "line": 70,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor.batch_compress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.compress",
        "repro.compression.bdi.BDICompressor.compress",
        "repro.compression.bpc.BPCCompressor.compress",
        "repro.compression.cpack.CPackCompressor.compress",
        "repro.compression.fpc.FPCCompressor.compress",
        "repro.compression.lz.LZCompressor.compress",
        "repro.compression.selector.BestOfCompressor.compress",
        "repro.compression.zero.ZeroCompressor.compress"
      ],
      "dispatches": [],
      "line": 79,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor.compressed_size_bits"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.compress",
        "repro.compression.bdi.BDICompressor.compress",
        "repro.compression.bpc.BPCCompressor.compress",
        "repro.compression.cpack.CPackCompressor.compress",
        "repro.compression.fpc.FPCCompressor.compress",
        "repro.compression.lz.LZCompressor.compress",
        "repro.compression.selector.BestOfCompressor.compress",
        "repro.compression.zero.ZeroCompressor.compress"
      ],
      "dispatches": [],
      "line": 83,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor.compressed_size_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 67,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.Compressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 107,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.bytes_of"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 99,
      "path": "src/repro/compression/base.py",
      "qual": "repro.compression.base.words_of"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.to_bits"
      ],
      "dispatches": [],
      "line": 144,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi.BDICompressor._finish"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 133,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi.BDICompressor._payload_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi.BDICompressor._repeated_value"
    },
    {
      "calls": [
        "repro.compression.base.words_of",
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bitstream.fits_signed",
        "repro.compression.bitstream.to_twos_complement"
      ],
      "dispatches": [],
      "line": 112,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi.BDICompressor._try_encoding"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input",
        "repro.compression.bdi.BDICompressor._finish",
        "repro.compression.bdi.BDICompressor._payload_bits",
        "repro.compression.bdi.BDICompressor._repeated_value",
        "repro.compression.bdi.BDICompressor._try_encoding",
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.zero.is_zero_line"
      ],
      "dispatches": [],
      "line": 62,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi.BDICompressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.base.bytes_of",
        "repro.compression.bitstream.BitReader.__init__",
        "repro.compression.bitstream.BitReader.read",
        "repro.compression.bitstream.BitWriter.to_bytes",
        "repro.compression.bitstream.sign_extend"
      ],
      "dispatches": [],
      "line": 90,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi.BDICompressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/compression/bdi.py",
      "qual": "repro.compression.bdi._Encoding.name"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 73,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitReader.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitReader.read"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitReader.remaining"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 16,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitWriter.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitWriter.bit_length"
    },
    {
      "calls": [
        "repro.compression.bitstream.Bits.__init__"
      ],
      "dispatches": [],
      "line": 40,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitWriter.to_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 34,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitWriter.to_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 20,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.BitWriter.write"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 56,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.Bits.__eq__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.Bits.__hash__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.Bits.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.Bits.__len__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 66,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.Bits.__repr__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 111,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.fits_signed"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 96,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.sign_extend"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 102,
      "path": "src/repro/compression/bitstream.py",
      "qual": "repro.compression.bitstream.to_twos_complement"
    },
    {
      "calls": [
        "repro.compression.bpc._PlaneCoder.__init__"
      ],
      "dispatches": [],
      "line": 217,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor.__init__"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bpc.BPCCompressor._encode_base",
        "repro.compression.bpc._PlaneCoder.encode"
      ],
      "dispatches": [],
      "line": 269,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor._compress_delta"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bpc._PlaneCoder.encode"
      ],
      "dispatches": [],
      "line": 282,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor._compress_plain"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitReader.read",
        "repro.compression.bitstream.sign_extend"
      ],
      "dispatches": [],
      "line": 309,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor._decode_base"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bitstream.sign_extend"
      ],
      "dispatches": [],
      "line": 291,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor._encode_base"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input",
        "repro.compression.base.words_of",
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.to_bits",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bpc.BPCCompressor._compress_delta",
        "repro.compression.bpc.BPCCompressor._compress_plain"
      ],
      "dispatches": [],
      "line": 226,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.base.bytes_of",
        "repro.compression.bitstream.BitReader.__init__",
        "repro.compression.bitstream.BitReader.read",
        "repro.compression.bitstream.sign_extend",
        "repro.compression.bpc.BPCCompressor._decode_base",
        "repro.compression.bpc._PlaneCoder.decode"
      ],
      "dispatches": [],
      "line": 248,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.BPCCompressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 104,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder.__init__"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitReader.read"
      ],
      "dispatches": [],
      "line": 167,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder._decode_plane"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bpc._PlaneCoder._single_one_position",
        "repro.compression.bpc._PlaneCoder._two_consecutive_ones_position"
      ],
      "dispatches": [],
      "line": 146,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder._encode_plane"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.write"
      ],
      "dispatches": [],
      "line": 137,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder._flush_run"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.bit_length"
      ],
      "dispatches": [],
      "line": 195,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder._single_one_position"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.bit_length"
      ],
      "dispatches": [],
      "line": 200,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder._two_consecutive_ones_position"
    },
    {
      "calls": [
        "repro.compression.bpc._PlaneCoder._decode_plane",
        "repro.compression.bpc._from_bit_planes"
      ],
      "dispatches": [],
      "line": 125,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder.decode"
    },
    {
      "calls": [
        "repro.compression.bpc._PlaneCoder._encode_plane",
        "repro.compression.bpc._PlaneCoder._flush_run",
        "repro.compression.bpc._bit_planes"
      ],
      "dispatches": [],
      "line": 108,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneCoder.encode"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 97,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._PlaneGeometry.pos_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._bit_planes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc._from_bit_planes"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.compress",
        "repro.compression.bdi.BDICompressor.compress",
        "repro.compression.bpc.BPCCompressor.compress",
        "repro.compression.cpack.CPackCompressor.compress",
        "repro.compression.fpc.FPCCompressor.compress",
        "repro.compression.lz.LZCompressor.compress",
        "repro.compression.selector.BestOfCompressor.compress",
        "repro.compression.zero.ZeroCompressor.compress"
      ],
      "dispatches": [],
      "line": 322,
      "path": "src/repro/compression/bpc.py",
      "qual": "repro.compression.bpc.compression_ratio"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitReader.read",
        "repro.compression.cpack.CPackCompressor._push"
      ],
      "dispatches": [],
      "line": 87,
      "path": "src/repro/compression/cpack.py",
      "qual": "repro.compression.cpack.CPackCompressor._decode_word"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.cpack.CPackCompressor._push"
      ],
      "dispatches": [],
      "line": 56,
      "path": "src/repro/compression/cpack.py",
      "qual": "repro.compression.cpack.CPackCompressor._encode_word"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 116,
      "path": "src/repro/compression/cpack.py",
      "qual": "repro.compression.cpack.CPackCompressor._push"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input",
        "repro.compression.base.words_of",
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.to_bits",
        "repro.compression.cpack.CPackCompressor._encode_word"
      ],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/compression/cpack.py",
      "qual": "repro.compression.cpack.CPackCompressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.base.bytes_of",
        "repro.compression.bitstream.BitReader.__init__",
        "repro.compression.cpack.CPackCompressor._decode_word"
      ],
      "dispatches": [],
      "line": 46,
      "path": "src/repro/compression/cpack.py",
      "qual": "repro.compression.cpack.CPackCompressor.decompress"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.bitstream.fits_signed",
        "repro.compression.bitstream.sign_extend",
        "repro.compression.bitstream.to_twos_complement",
        "repro.compression.fpc.FPCCompressor._repeated_byte",
        "repro.compression.fpc.FPCCompressor._signed",
        "repro.compression.fpc.FPCCompressor._two_half_se8"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/compression/fpc.py",
      "qual": "repro.compression.fpc.FPCCompressor._encode_word"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 114,
      "path": "src/repro/compression/fpc.py",
      "qual": "repro.compression.fpc.FPCCompressor._repeated_byte"
    },
    {
      "calls": [
        "repro.compression.bitstream.sign_extend"
      ],
      "dispatches": [],
      "line": 79,
      "path": "src/repro/compression/fpc.py",
      "qual": "repro.compression.fpc.FPCCompressor._signed"
    },
    {
      "calls": [
        "repro.compression.bitstream.fits_signed",
        "repro.compression.bitstream.sign_extend"
      ],
      "dispatches": [],
      "line": 108,
      "path": "src/repro/compression/fpc.py",
      "qual": "repro.compression.fpc.FPCCompressor._two_half_se8"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input",
        "repro.compression.base.words_of",
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.to_bits",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.fpc.FPCCompressor._encode_word"
      ],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/compression/fpc.py",
      "qual": "repro.compression.fpc.FPCCompressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.base.bytes_of",
        "repro.compression.bitstream.BitReader.__init__",
        "repro.compression.bitstream.BitReader.read",
        "repro.compression.bitstream.sign_extend"
      ],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/compression/fpc.py",
      "qual": "repro.compression.fpc.FPCCompressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 61,
      "path": "src/repro/compression/lz.py",
      "qual": "repro.compression.lz.LZCompressor._longest_match"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input",
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.to_bits",
        "repro.compression.bitstream.BitWriter.write",
        "repro.compression.lz.LZCompressor._longest_match"
      ],
      "dispatches": [],
      "line": 26,
      "path": "src/repro/compression/lz.py",
      "qual": "repro.compression.lz.LZCompressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.bitstream.BitReader.__init__",
        "repro.compression.bitstream.BitReader.read"
      ],
      "dispatches": [],
      "line": 44,
      "path": "src/repro/compression/lz.py",
      "qual": "repro.compression.lz.LZCompressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 31,
      "path": "src/repro/compression/selector.py",
      "qual": "repro.compression.selector.BestOfCompressor.__init__"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.batch_compress",
        "repro.compression.selector.BestOfCompressor.batch_compress",
        "repro.compression.vector.batch.BatchCompressor.batch_compress",
        "repro.compression.vector.batch.BatchCompressor.batch_size_bits",
        "repro.compression.vector.batch.batch_compressor_for"
      ],
      "dispatches": [],
      "line": 50,
      "path": "src/repro/compression/selector.py",
      "qual": "repro.compression.selector.BestOfCompressor.batch_compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input"
      ],
      "dispatches": [],
      "line": 43,
      "path": "src/repro/compression/selector.py",
      "qual": "repro.compression.selector.BestOfCompressor.compress"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/compression/selector.py",
      "qual": "repro.compression.selector.BestOfCompressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 107,
      "path": "src/repro/compression/selector.py",
      "qual": "repro.compression.selector.available_algorithms"
    },
    {
      "calls": [
        "repro.compression.selector.available_algorithms"
      ],
      "dispatches": [],
      "line": 112,
      "path": "src/repro/compression/selector.py",
      "qual": "repro.compression.selector.make_compressor"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.__init__"
    },
    {
      "calls": [
        "repro.compression.vector.layout.lines_to_array"
      ],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.batch_compress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 105,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.batch_decompress"
    },
    {
      "calls": [
        "repro.compression.vector.bdi.BDIKernel.size_bits",
        "repro.compression.vector.bpc.BPCKernel.size_bits",
        "repro.compression.vector.fpc.FPCKernel.size_bits",
        "repro.compression.vector.layout.lines_to_array",
        "repro.compression.vector.zero.ZeroKernel.size_bits"
      ],
      "dispatches": [],
      "line": 98,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.batch_size_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 75,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.for_compressor"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.name"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.BatchCompressor.vectorized"
    },
    {
      "calls": [
        "repro.compression.vector.batch.BatchCompressor.for_compressor"
      ],
      "dispatches": [],
      "line": 118,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.batch_compressor_for"
    },
    {
      "calls": [
        "repro.compression.vector.batch.BatchCompressor.__init__"
      ],
      "dispatches": [],
      "line": 112,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.make_batch_compressor"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 50,
      "path": "src/repro/compression/vector/batch.py",
      "qual": "repro.compression.vector.batch.vectorized_algorithms"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/compression/vector/bdi.py",
      "qual": "repro.compression.vector.bdi.BDIKernel.__init__"
    },
    {
      "calls": [
        "repro.compression.vector.bdi.BDIKernel._feasible",
        "repro.compression.vector.layout.words_view",
        "repro.compression.vector.zero.zero_mask"
      ],
      "dispatches": [],
      "line": 61,
      "path": "src/repro/compression/vector/bdi.py",
      "qual": "repro.compression.vector.bdi.BDIKernel._classify"
    },
    {
      "calls": [
        "repro.compression.vector.layout.words_view"
      ],
      "dispatches": [],
      "line": 48,
      "path": "src/repro/compression/vector/bdi.py",
      "qual": "repro.compression.vector.bdi.BDIKernel._feasible"
    },
    {
      "calls": [
        "repro.compression.bitstream.Bits.__init__",
        "repro.compression.vector.bdi.BDIKernel._classify",
        "repro.compression.vector.layout.words_view"
      ],
      "dispatches": [],
      "line": 83,
      "path": "src/repro/compression/vector/bdi.py",
      "qual": "repro.compression.vector.bdi.BDIKernel.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.bitstream.BitWriter.to_bytes"
      ],
      "dispatches": [],
      "line": 129,
      "path": "src/repro/compression/vector/bdi.py",
      "qual": "repro.compression.vector.bdi.BDIKernel.decompress"
    },
    {
      "calls": [
        "repro.compression.vector.bdi.BDIKernel._classify"
      ],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/compression/vector/bdi.py",
      "qual": "repro.compression.vector.bdi.BDIKernel.size_bits"
    },
    {
      "calls": [
        "repro.compression.bpc.BPCCompressor.__init__"
      ],
      "dispatches": [],
      "line": 112,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 209,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel._emit_planes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 194,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel._encode_base"
    },
    {
      "calls": [
        "repro.compression.vector.bpc._PlaneGrid.__init__",
        "repro.compression.vector.layout.words_view"
      ],
      "dispatches": [],
      "line": 122,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel._grids"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 137,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel._select"
    },
    {
      "calls": [
        "repro.compression.bitstream.Bits.__init__",
        "repro.compression.vector.bpc.BPCKernel._emit_planes",
        "repro.compression.vector.bpc.BPCKernel._encode_base",
        "repro.compression.vector.bpc.BPCKernel._grids",
        "repro.compression.vector.bpc.BPCKernel._select"
      ],
      "dispatches": [],
      "line": 159,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel.compress"
    },
    {
      "calls": [
        "repro.compression.bpc.BPCCompressor.decompress"
      ],
      "dispatches": [],
      "line": 251,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel.decompress"
    },
    {
      "calls": [
        "repro.compression.vector.bpc.BPCKernel._grids",
        "repro.compression.vector.bpc.BPCKernel._select"
      ],
      "dispatches": [],
      "line": 153,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc.BPCKernel.size_bits"
    },
    {
      "calls": [
        "repro.core.metadata.PageMetadata.copy"
      ],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/compression/vector/bpc.py",
      "qual": "repro.compression.vector.bpc._PlaneGrid.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/compression/vector/fpc.py",
      "qual": "repro.compression.vector.fpc.FPCKernel.__init__"
    },
    {
      "calls": [
        "repro.compression.vector.layout.words_view"
      ],
      "dispatches": [],
      "line": 38,
      "path": "src/repro/compression/vector/fpc.py",
      "qual": "repro.compression.vector.fpc.FPCKernel._classify"
    },
    {
      "calls": [
        "repro.compression.bitstream.Bits.__init__",
        "repro.compression.vector.fpc.FPCKernel._classify"
      ],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/compression/vector/fpc.py",
      "qual": "repro.compression.vector.fpc.FPCKernel.compress"
    },
    {
      "calls": [
        "repro.compression.fpc.FPCCompressor.decompress"
      ],
      "dispatches": [],
      "line": 117,
      "path": "src/repro/compression/vector/fpc.py",
      "qual": "repro.compression.vector.fpc.FPCKernel.decompress"
    },
    {
      "calls": [
        "repro.compression.vector.fpc.FPCKernel._classify"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/compression/vector/fpc.py",
      "qual": "repro.compression.vector.fpc.FPCKernel.size_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/compression/vector/layout.py",
      "qual": "repro.compression.vector.layout.array_to_lines"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 18,
      "path": "src/repro/compression/vector/layout.py",
      "qual": "repro.compression.vector.layout.lines_to_array"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 42,
      "path": "src/repro/compression/vector/layout.py",
      "qual": "repro.compression.vector.layout.words_view"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/compression/vector/zero.py",
      "qual": "repro.compression.vector.zero.ZeroKernel.__init__"
    },
    {
      "calls": [
        "repro.compression.bitstream.Bits.__init__",
        "repro.compression.vector.zero.zero_mask"
      ],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/compression/vector/zero.py",
      "qual": "repro.compression.vector.zero.ZeroKernel.compress"
    },
    {
      "calls": [
        "repro.compression.zero.ZeroCompressor.decompress"
      ],
      "dispatches": [],
      "line": 51,
      "path": "src/repro/compression/vector/zero.py",
      "qual": "repro.compression.vector.zero.ZeroKernel.decompress"
    },
    {
      "calls": [
        "repro.compression.vector.zero.zero_mask"
      ],
      "dispatches": [],
      "line": 34,
      "path": "src/repro/compression/vector/zero.py",
      "qual": "repro.compression.vector.zero.ZeroKernel.size_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 20,
      "path": "src/repro/compression/vector/zero.py",
      "qual": "repro.compression.vector.zero.zero_mask"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_input",
        "repro.compression.bitstream.Bits.__init__",
        "repro.compression.zero.is_zero_line"
      ],
      "dispatches": [],
      "line": 25,
      "path": "src/repro/compression/zero.py",
      "qual": "repro.compression.zero.ZeroCompressor.compress"
    },
    {
      "calls": [
        "repro.compression.base.Compressor._check_line",
        "repro.compression.bitstream.BitWriter.to_bytes"
      ],
      "dispatches": [],
      "line": 33,
      "path": "src/repro/compression/zero.py",
      "qual": "repro.compression.zero.ZeroCompressor.decompress"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 15,
      "path": "src/repro/compression/zero.py",
      "qual": "repro.compression.zero.is_zero_line"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.__init__"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.free_page",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.osmodel.vm.VirtualMemory.free_page",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 124,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver._reclaim"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 62,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver._tracer"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.deflate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 106,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.held_pages"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 109,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.protect"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 121,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.protected_pages"
    },
    {
      "calls": [
        "repro.core.ballooning.BalloonDriver._reclaim",
        "repro.core.ballooning.FreeListOSModel.take_cold_page",
        "repro.core.ballooning.FreeListOSModel.take_free_page",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.osmodel.vm.VirtualMemory.take_cold_page",
        "repro.osmodel.vm.VirtualMemory.take_free_page"
      ],
      "dispatches": [],
      "line": 67,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.relieve"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.clear"
      ],
      "dispatches": [],
      "line": 113,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.BalloonDriver.unprotect"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 152,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.FreeListOSModel.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 160,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.FreeListOSModel.take_cold_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 157,
      "path": "src/repro/core/ballooning.py",
      "qual": "repro.core.ballooning.FreeListOSModel.take_free_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 68,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.CompressoConfig.__post_init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 102,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.CompressoConfig.line_bin_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 94,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.CompressoConfig.lines_per_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 98,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.CompressoConfig.max_chunks_per_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 106,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.CompressoConfig.replace"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 111,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.compresso_config"
    },
    {
      "calls": [
        "repro.core.config.lcp_config"
      ],
      "dispatches": [],
      "line": 140,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.lcp_align_config"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 116,
      "path": "src/repro/core/config.py",
      "qual": "repro.core.config.lcp_config"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer.__init__",
        "repro.compression.selector.make_compressor",
        "repro.core.controller._SizeCache.__init__",
        "repro.core.lcp.LCPPack.__init__",
        "repro.core.metadata_cache.MetadataCache.__init__",
        "repro.core.predictor.PageOverflowPredictor.__init__",
        "repro.memory.physical.PhysicalMemory.__init__"
      ],
      "dispatches": [],
      "line": 102,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.__init__"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._chunks_for"
      ],
      "dispatches": [],
      "line": 588,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._allocate_chunks",
        "repro.core.controller.CompressedMemoryController._allocate_region",
        "repro.memory.allocator.ChunkAllocator.free"
      ],
      "dispatches": [],
      "line": 634,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._allocate"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._relieve_pressure",
        "repro.memory.allocator.ChunkAllocator.allocate"
      ],
      "dispatches": [],
      "line": 663,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._allocate_chunks"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._relieve_pressure"
      ],
      "dispatches": [],
      "line": 670,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._allocate_region"
    },
    {
      "calls": [
        "repro.core.packing.PackingScheme.bin_index"
      ],
      "dispatches": [],
      "line": 1099,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._apply_layout"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout",
        "repro.core.packing.PackingScheme.pack_candidates"
      ],
      "dispatches": [],
      "line": 600,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._best_layout"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 814,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._blocks_for"
    },
    {
      "calls": [
        "repro.memory.allocator.VariableAllocator.largest_free_region"
      ],
      "dispatches": [],
      "line": 707,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._can_allocate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 615,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._check_address"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 621,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._chunks_for"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._mpa_address"
      ],
      "dispatches": [],
      "line": 1106,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._count_bulk"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.free",
        "repro.memory.allocator.ChunkAllocator.owned_chunks",
        "repro.memory.allocator.VariableAllocator.free_region",
        "repro.memory.allocator.VariableAllocator.owned_regions",
        "repro.pressure.controller.PressureController.free"
      ],
      "dispatches": [],
      "line": 1351,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._defensive_release"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._defensive_release",
        "repro.core.metadata_cache.MetadataCache.invalidate",
        "repro.core.predictor.PageOverflowPredictor.drop_page",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 763,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._deny_allocation"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._can_allocate",
        "repro.core.controller.CompressedMemoryController._maybe_repack",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 715,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._emergency_repack"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 743,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._enter_degraded_mode"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._maybe_exit_degraded",
        "repro.core.controller.CompressedMemoryController._sanitize_op"
      ],
      "dispatches": [],
      "line": 1190,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._finish"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout",
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._apply_layout",
        "repro.core.controller.CompressedMemoryController._best_layout",
        "repro.core.controller.CompressedMemoryController._layout",
        "repro.core.controller.CompressedMemoryController._store_uncompressed",
        "repro.core.controller.CompressedMemoryController._write_blocks",
        "repro.core.metadata_cache.MetadataCache.mark_dirty",
        "repro.core.metadata_cache.MetadataCache.reshape",
        "repro.core.predictor.PageOverflowPredictor.should_inflate",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 855,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._first_touch"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._inflate_line",
        "repro.core.controller.CompressedMemoryController._layout",
        "repro.core.controller.CompressedMemoryController._mpa_address",
        "repro.core.controller.CompressedMemoryController._os_page_fault",
        "repro.core.controller.CompressedMemoryController._page_data_blocks",
        "repro.core.controller.CompressedMemoryController._recompress",
        "repro.core.controller.CompressedMemoryController._shift_grow",
        "repro.core.controller.CompressedMemoryController._store_uncompressed",
        "repro.core.controller.CompressedMemoryController._write_blocks",
        "repro.core.metadata_cache.MetadataCache.mark_dirty",
        "repro.core.packing.PackingScheme.bin_index",
        "repro.core.predictor.PageOverflowPredictor.on_page_overflow",
        "repro.core.predictor.PageOverflowPredictor.should_inflate",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 880,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._handle_line_overflow"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._recover_allocator_books",
        "repro.core.controller.CompressedMemoryController._recover_leaked_storage",
        "repro.core.controller.CompressedMemoryController._recover_mdcache_entry",
        "repro.core.controller.CompressedMemoryController._recover_page",
        "repro.core.controller.CompressedMemoryController._verify_recovery",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1235,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._handle_new_violations"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 1007,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._inflate_line"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 846,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._invalidate_burst"
    },
    {
      "calls": [
        "repro.core.linepack.LinePack.layout_from_bins"
      ],
      "dispatches": [],
      "line": 581,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._layout"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._can_allocate",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 752,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._maybe_exit_degraded"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout",
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._apply_layout",
        "repro.core.controller.CompressedMemoryController._best_layout",
        "repro.core.controller.CompressedMemoryController._mpa_address",
        "repro.core.controller.CompressedMemoryController._page_data_blocks",
        "repro.core.metadata_cache.MetadataCache.contains",
        "repro.core.metadata_cache.MetadataCache.reshape",
        "repro.core.predictor.PageOverflowPredictor.on_page_shrink",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1128,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._maybe_repack"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._speculate",
        "repro.core.metadata_cache.MetadataCache.access",
        "repro.memory.physical.PhysicalMemory.metadata_address",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 506,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._metadata_access"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 798,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._mpa_address"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._maybe_repack",
        "repro.core.predictor.PageOverflowPredictor.drop_page",
        "repro.core.predictor.PageOverflowPredictor.local_value",
        "repro.memory.physical.PhysicalMemory.metadata_address",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 549,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._on_metadata_evict"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1093,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._os_page_fault"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 492,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._page"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._layout"
      ],
      "dispatches": [],
      "line": 1011,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._page_data_blocks"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout",
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._apply_layout",
        "repro.core.controller.CompressedMemoryController._best_layout",
        "repro.core.controller.CompressedMemoryController._count_bulk",
        "repro.core.controller.CompressedMemoryController._os_page_fault",
        "repro.core.controller.CompressedMemoryController._page_data_blocks",
        "repro.core.controller.CompressedMemoryController._should_store_raw",
        "repro.core.controller.CompressedMemoryController._store_uncompressed",
        "repro.core.predictor.PageOverflowPredictor.on_page_overflow",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1053,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._recompress"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.repair_books",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1392,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._recover_allocator_books"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.free",
        "repro.memory.allocator.ChunkAllocator.owned_chunks",
        "repro.memory.allocator.VariableAllocator.free_region",
        "repro.memory.allocator.VariableAllocator.owned_regions",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.pressure.controller.PressureController.free"
      ],
      "dispatches": [],
      "line": 1398,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._recover_leaked_storage"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache.invalidate",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1386,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._recover_mdcache_entry"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._defensive_release",
        "repro.core.controller.CompressedMemoryController._deny_allocation",
        "repro.core.controller._SizeCache.size_bytes",
        "repro.core.metadata_cache.MetadataCache.invalidate",
        "repro.core.predictor.PageOverflowPredictor.drop_page",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 1310,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._recover_page"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.free"
      ],
      "dispatches": [],
      "line": 783,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._release_storage"
    },
    {
      "calls": [
        "repro.core.ballooning.BalloonDriver.relieve",
        "repro.core.controller.CompressedMemoryController._emergency_repack",
        "repro.core.controller.CompressedMemoryController._enter_degraded_mode"
      ],
      "dispatches": [],
      "line": 677,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._relieve_pressure"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 839,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._remember_block"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer.check_all",
        "repro.core.controller.CompressedMemoryController._handle_new_violations"
      ],
      "dispatches": [],
      "line": 1210,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._sanitize_all"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer.after_op",
        "repro.core.controller.CompressedMemoryController._handle_new_violations"
      ],
      "dispatches": [],
      "line": 1202,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._sanitize_op"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout",
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._count_bulk",
        "repro.core.controller.CompressedMemoryController._layout",
        "repro.core.controller.CompressedMemoryController._os_page_fault",
        "repro.core.controller.CompressedMemoryController._page_data_blocks",
        "repro.core.controller.CompressedMemoryController._should_store_raw",
        "repro.core.controller.CompressedMemoryController._store_uncompressed",
        "repro.core.predictor.PageOverflowPredictor.on_page_overflow",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 957,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._shift_grow"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 1017,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._should_store_raw"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._mpa_address",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 528,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._speculate"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._count_bulk",
        "repro.core.metadata_cache.MetadataCache.reshape",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 1032,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._store_uncompressed"
    },
    {
      "calls": [
        "repro.check.sanitizer.MemorySanitizer.check_allocator",
        "repro.check.sanitizer.MemorySanitizer.check_page",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 1289,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._verify_recovery"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._blocks_for",
        "repro.core.controller.CompressedMemoryController._mpa_address",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 822,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._write_blocks"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._finish",
        "repro.core.controller.CompressedMemoryController._first_touch",
        "repro.core.controller.CompressedMemoryController._handle_line_overflow",
        "repro.core.controller.CompressedMemoryController._layout",
        "repro.core.controller.CompressedMemoryController._mpa_address",
        "repro.core.controller.CompressedMemoryController._write_blocks",
        "repro.core.packing.PackingScheme.bin_bytes",
        "repro.core.packing.PackingScheme.bin_index",
        "repro.core.predictor.PageOverflowPredictor.on_line_overflow",
        "repro.core.predictor.PageOverflowPredictor.on_line_underflow",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 270,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController._write_line_dispatch"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 444,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.compression_ratio"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._sanitize_all",
        "repro.core.metadata_cache.MetadataCache.flush"
      ],
      "dispatches": [],
      "line": 460,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.flush_metadata"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._maybe_repack",
        "repro.core.controller.CompressedMemoryController._sanitize_op",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 467,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.force_repack"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._maybe_exit_degraded",
        "repro.core.controller.CompressedMemoryController._release_storage",
        "repro.core.controller.CompressedMemoryController._sanitize_op",
        "repro.core.metadata_cache.MetadataCache.invalidate",
        "repro.core.predictor.PageOverflowPredictor.drop_page",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 476,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.free_page"
    },
    {
      "calls": [
        "repro.compression.zero.is_zero_line",
        "repro.core.controller.CompressedMemoryController._alloc_chunks_for_layout",
        "repro.core.controller.CompressedMemoryController._allocate",
        "repro.core.controller.CompressedMemoryController._apply_layout",
        "repro.core.controller.CompressedMemoryController._best_layout",
        "repro.core.controller.CompressedMemoryController._check_address",
        "repro.core.controller.CompressedMemoryController._deny_allocation",
        "repro.core.controller.CompressedMemoryController._page",
        "repro.core.controller.CompressedMemoryController._sanitize_op",
        "repro.core.controller.CompressedMemoryController._should_store_raw",
        "repro.core.controller._SizeCache.size_bytes"
      ],
      "dispatches": [],
      "line": 352,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.install_page"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.batch_compress",
        "repro.compression.selector.BestOfCompressor.batch_compress",
        "repro.compression.vector.batch.BatchCompressor.batch_compress",
        "repro.compression.vector.batch.BatchCompressor.batch_size_bits",
        "repro.compression.vector.batch.batch_compressor_for",
        "repro.compression.zero.is_zero_line"
      ],
      "dispatches": [],
      "line": 404,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.prime_size_cache"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._blocks_for",
        "repro.core.controller.CompressedMemoryController._check_address",
        "repro.core.controller.CompressedMemoryController._finish",
        "repro.core.controller.CompressedMemoryController._layout",
        "repro.core.controller.CompressedMemoryController._metadata_access",
        "repro.core.controller.CompressedMemoryController._mpa_address",
        "repro.core.controller.CompressedMemoryController._page",
        "repro.core.controller.CompressedMemoryController._remember_block",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.NullTracer.tick",
        "repro.obs.tracer.Tracer.emit",
        "repro.obs.tracer.Tracer.tick"
      ],
      "dispatches": [],
      "line": 179,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.read_line"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController._sanitize_all",
        "repro.core.controller.CompressedMemoryController._sanitize_op"
      ],
      "dispatches": [],
      "line": 1218,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.scrub"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 457,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.used_bytes"
    },
    {
      "calls": [
        "repro.compression.zero.is_zero_line",
        "repro.core.controller.CompressedMemoryController._check_address",
        "repro.core.controller.CompressedMemoryController._deny_allocation",
        "repro.core.controller.CompressedMemoryController._finish",
        "repro.core.controller.CompressedMemoryController._invalidate_burst",
        "repro.core.controller.CompressedMemoryController._metadata_access",
        "repro.core.controller.CompressedMemoryController._page",
        "repro.core.controller.CompressedMemoryController._write_line_dispatch",
        "repro.core.controller._SizeCache.size_bytes",
        "repro.core.metadata_cache.MetadataCache.mark_dirty",
        "repro.core.packing.PackingScheme.bin_index",
        "repro.obs.tracer.NullTracer.tick",
        "repro.obs.tracer.Tracer.tick"
      ],
      "dispatches": [],
      "line": 235,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.CompressedMemoryController.write_line"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller.PageState.allocation_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 58,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller._SizeCache.__init__"
    },
    {
      "calls": [
        "repro.compression.base.Compressor.compressed_size_bytes",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/core/controller.py",
      "qual": "repro.core.controller._SizeCache.size_bytes"
    },
    {
      "calls": [
        "repro.core.lcp.derive_targets"
      ],
      "dispatches": [],
      "line": 74,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.LCPPack.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 120,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.LCPPack._target_bin_for_class"
    },
    {
      "calls": [
        "repro.core.packing.PackingScheme.bin_bytes"
      ],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.LCPPack.layout_from_bins"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 149,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.LCPPack.offset_calc_cycles"
    },
    {
      "calls": [
        "repro.core.lcp.LCPPack.pack_candidates"
      ],
      "dispatches": [],
      "line": 129,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.LCPPack.pack"
    },
    {
      "calls": [
        "repro.core.lcp.LCPPack._target_bin_for_class",
        "repro.core.lcp.LCPPack.layout_from_bins",
        "repro.core.packing.PackingScheme.bin_bytes"
      ],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.LCPPack.pack_candidates"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/core/lcp.py",
      "qual": "repro.core.lcp.derive_targets"
    },
    {
      "calls": [
        "repro.core.packing.PackingScheme.bin_bytes"
      ],
      "dispatches": [],
      "line": 28,
      "path": "src/repro/core/linepack.py",
      "qual": "repro.core.linepack.LinePack.layout_from_bins"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 46,
      "path": "src/repro/core/linepack.py",
      "qual": "repro.core.linepack.LinePack.offset_calc_cycles"
    },
    {
      "calls": [
        "repro.core.linepack.LinePack.layout_from_bins",
        "repro.core.packing.PackingScheme.bin_index"
      ],
      "dispatches": [],
      "line": 23,
      "path": "src/repro/core/linepack.py",
      "qual": "repro.core.linepack.LinePack.pack"
    },
    {
      "calls": [
        "repro.core.linepack.LinePack.pack",
        "repro.core.packing.PageLayout.locate"
      ],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/core/linepack.py",
      "qual": "repro.core.linepack.split_access_fraction"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.PageMetadata.check"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 72,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.PageMetadata.copy"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitReader.__init__",
        "repro.compression.bitstream.BitReader.read"
      ],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.PageMetadata.decode"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.__init__",
        "repro.compression.bitstream.BitWriter.to_bits",
        "repro.compression.bitstream.BitWriter.write"
      ],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.PageMetadata.encode"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 110,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.PageMetadata.is_uncompressed"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 163,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.metadata_overhead_fraction"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 158,
      "path": "src/repro/core/metadata.py",
      "qual": "repro.core.metadata.metadata_region_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 33,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.CacheEntry.slots"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 64,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.__init__"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 181,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache._evict_lru"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache._set_for"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 178,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache._used_slots"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._set_for",
        "repro.core.metadata_cache.MetadataCache.fill",
        "repro.core.metadata_cache.MetadataCache.lookup"
      ],
      "dispatches": [],
      "line": 116,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.access"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._set_for"
      ],
      "dispatches": [],
      "line": 153,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.contains"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 159,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.entry_items"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._evict_lru",
        "repro.core.metadata_cache.MetadataCache._set_for",
        "repro.core.metadata_cache.MetadataCache._used_slots",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.fill"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._evict_lru"
      ],
      "dispatches": [],
      "line": 147,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.flush"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._set_for"
      ],
      "dispatches": [],
      "line": 143,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.invalidate"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._set_for",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 83,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.lookup"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._set_for"
      ],
      "dispatches": [],
      "line": 127,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.mark_dirty"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._used_slots"
      ],
      "dispatches": [],
      "line": 169,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.occupancy"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache._evict_lru",
        "repro.core.metadata_cache.MetadataCache._set_for",
        "repro.core.metadata_cache.MetadataCache._used_slots",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 132,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.reshape"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 156,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCache.resident_pages"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 45,
      "path": "src/repro/core/metadata_cache.py",
      "qual": "repro.core.metadata_cache.MetadataCacheStats.hit_rate"
    },
    {
      "calls": [
        "repro.core.packing.blocks_spanned"
      ],
      "dispatches": [],
      "line": 44,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.LineLocation.accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 100,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 111,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.bin_bytes"
    },
    {
      "calls": [
        "repro.core.packing.choose_bin"
      ],
      "dispatches": [],
      "line": 108,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.bin_index"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 132,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.layout_from_bins"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.offset_calc_cycles"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.pack"
    },
    {
      "calls": [
        "repro.core.lcp.LCPPack.pack",
        "repro.core.linepack.LinePack.pack",
        "repro.core.packing.PackingScheme.pack"
      ],
      "dispatches": [],
      "line": 121,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PackingScheme.pack_candidates"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PageLayout.inflation_base"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 59,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PageLayout.inflation_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PageLayout.locate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 76,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.PageLayout.total_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 29,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.blocks_spanned"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 17,
      "path": "src/repro/core/packing.py",
      "qual": "repro.core.packing.choose_bin"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 68,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 118,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor._local_counter"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.drop_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.global_value"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 110,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.local_value"
    },
    {
      "calls": [
        "repro.core.predictor.PageOverflowPredictor._local_counter"
      ],
      "dispatches": [],
      "line": 76,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.on_line_overflow"
    },
    {
      "calls": [
        "repro.core.predictor.PageOverflowPredictor._local_counter"
      ],
      "dispatches": [],
      "line": 79,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.on_line_underflow"
    },
    {
      "calls": [
        "repro.core.predictor.SaturatingCounter.increment"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.on_page_overflow"
    },
    {
      "calls": [
        "repro.core.predictor.SaturatingCounter.decrement"
      ],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.on_page_shrink"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.PageOverflowPredictor.should_inflate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 34,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.SaturatingCounter.__post_init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.SaturatingCounter.decrement"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 45,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.SaturatingCounter.high_bit_set"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 48,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.SaturatingCounter.increment"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 41,
      "path": "src/repro/core/predictor.py",
      "qual": "repro.core.predictor.SaturatingCounter.max_value"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 158,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.as_dict"
    },
    {
      "calls": [
        "repro.obs.metrics.MetricRegistry.register"
      ],
      "dispatches": [],
      "line": 161,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.bind_registry"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 126,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.breakdown"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.compression_change_accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 87,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.demand_accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 101,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.extra_accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 143,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.merge"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 136,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.metadata_hit_rate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 116,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.metadata_lookups"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 120,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.relative_extra_accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 111,
      "path": "src/repro/core/stats.py",
      "qual": "repro.core.stats.ControllerStats.saved_accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 40,
      "path": "src/repro/cpu/core.py",
      "qual": "repro.cpu.core.AnalyticCore.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/cpu/core.py",
      "qual": "repro.cpu.core.AnalyticCore.advance_instructions"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 69,
      "path": "src/repro/cpu/core.py",
      "qual": "repro.cpu.core.AnalyticCore.seconds"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 61,
      "path": "src/repro/cpu/core.py",
      "qual": "repro.cpu.core.AnalyticCore.stall"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 30,
      "path": "src/repro/cpu/core.py",
      "qual": "repro.cpu.core.CoreStats.cycles"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 33,
      "path": "src/repro/cpu/core.py",
      "qual": "repro.cpu.core.CoreStats.ipc"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 50,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AdderModel.gate_delays_naive"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 58,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AdderModel.gate_delays_optimized"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 41,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AdderModel.nand_gates"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AdderModel.output_bits"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AdderModel.visible_cycles"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AreaReport.total_mm2"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 88,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.AreaReport.total_um2"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.bit_length"
      ],
      "dispatches": [],
      "line": 72,
      "path": "src/repro/energy/area.py",
      "qual": "repro.energy.area.offset_adder_for_bins"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 59,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyBreakdown.dram_nj"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyBreakdown.total_nj"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 38,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyConstants.sanity_fractions"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 71,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyModel.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 76,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyModel._seconds"
    },
    {
      "calls": [
        "repro.energy.model.EnergyModel._seconds"
      ],
      "dispatches": [],
      "line": 79,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyModel.evaluate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 110,
      "path": "src/repro/energy/model.py",
      "qual": "repro.energy.model.EnergyModel.relative"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 73,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.CellOutcome.as_row"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 158,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.FaultCampaign.__init__"
    },
    {
      "calls": [
        "repro.inject.campaign.CellOutcome.as_row",
        "repro.pressure.campaign.PressureCellOutcome.as_row"
      ],
      "dispatches": [],
      "line": 190,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.FaultCampaign.rows"
    },
    {
      "calls": [
        "repro.inject.campaign.campaign_cell"
      ],
      "dispatches": [],
      "line": 176,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.FaultCampaign.run"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 187,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.FaultCampaign.silent_corruptions"
    },
    {
      "calls": [
        "repro.inject.campaign.reconcile",
        "repro.inject.faults.FaultInjector.__init__",
        "repro.obs.tracer.Tracer.__init__",
        "repro.simulation.simulator.simulate",
        "repro.workloads.profiles.get_profile"
      ],
      "dispatches": [],
      "line": 133,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.campaign_cell"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.matches"
    },
    {
      "calls": [
        "repro.inject.campaign.matches"
      ],
      "dispatches": [],
      "line": 101,
      "path": "src/repro/inject/campaign.py",
      "qual": "repro.inject.campaign.reconcile"
    },
    {
      "calls": [
        "repro.inject.faults.parse_fault_spec"
      ],
      "dispatches": [],
      "line": 121,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 202,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector._compressed_pages"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.inject_double_grant",
        "repro.memory.allocator.ChunkAllocator.owned_chunks",
        "repro.memory.allocator.VariableAllocator.inject_double_grant",
        "repro.memory.allocator.VariableAllocator.owned_regions"
      ],
      "dispatches": [],
      "line": 298,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector._inject_double_grant"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.seize",
        "repro.memory.allocator.VariableAllocator.seize"
      ],
      "dispatches": [],
      "line": 288,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector._inject_exhaust"
    },
    {
      "calls": [
        "repro.compression.base.CompressedLine.size_bytes",
        "repro.core.controller._SizeCache.size_bytes",
        "repro.inject.faults.FaultInjector._compressed_pages"
      ],
      "dispatches": [],
      "line": 207,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector._inject_line"
    },
    {
      "calls": [
        "repro.core.metadata_cache.MetadataCache.entry_items"
      ],
      "dispatches": [],
      "line": 276,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector._inject_mdcache"
    },
    {
      "calls": [
        "repro.inject.faults.FaultInjector._compressed_pages"
      ],
      "dispatches": [],
      "line": 241,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector._inject_meta"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 139,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector.bind"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.scrub",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit"
      ],
      "dispatches": [],
      "line": 164,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector.inject"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.restore",
        "repro.memory.allocator.VariableAllocator.restore"
      ],
      "dispatches": [],
      "line": 190,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector.release_seized"
    },
    {
      "calls": [
        "repro.inject.faults.FaultInjector.inject"
      ],
      "dispatches": [],
      "line": 147,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultInjector.step"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 60,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.FaultSpec.__post_init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 70,
      "path": "src/repro/inject/faults.py",
      "qual": "repro.inject.faults.parse_fault_spec"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 44,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.AllocatorStats.fragmentation"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.AllocatorStats.free_chunks"
    },
    {
      "calls": [
        "repro.obs.metrics.MetricRegistry.gauge"
      ],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.AllocatorStats.observe"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 40,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.AllocatorStats.utilization"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 63,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 74,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.allocate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 163,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.check_books"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 125,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.chunk_base_address"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.free"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.free_chunks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 152,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.inject_double_grant"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.stats"
      ],
      "dispatches": [],
      "line": 121,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.observe"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 106,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.owned_chunks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 189,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.repair_books"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 144,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.restore"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 131,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.seize"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.stats"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 103,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.used_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 99,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.ChunkAllocator.used_chunks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 217,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 234,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator._order_for"
    },
    {
      "calls": [
        "repro.memory.allocator.VariableAllocator._order_for"
      ],
      "dispatches": [],
      "line": 242,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.allocate_region"
    },
    {
      "calls": [
        "repro.memory.allocator.VariableAllocator.check_books.claim"
      ],
      "dispatches": [],
      "line": 370,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.check_books"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 381,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.check_books.claim"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 325,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.chunk_base_address"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 292,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.free_chunks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 264,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.free_region"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 361,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.inject_double_grant"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 306,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.largest_free_region"
    },
    {
      "calls": [
        "repro.memory.allocator.VariableAllocator.largest_free_region",
        "repro.memory.allocator.VariableAllocator.stats",
        "repro.obs.metrics.MetricRegistry.gauge"
      ],
      "dispatches": [],
      "line": 319,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.observe"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 281,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.owned_regions"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 278,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.region_size_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 402,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.repair_books"
    },
    {
      "calls": [
        "repro.memory.allocator.VariableAllocator.free_region"
      ],
      "dispatches": [],
      "line": 351,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.restore"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 330,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.seize"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 312,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.stats"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 303,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.used_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 299,
      "path": "src/repro/memory/allocator.py",
      "qual": "repro.memory.allocator.VariableAllocator.used_chunks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DDR4Channel.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 104,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DDR4Channel._map"
    },
    {
      "calls": [
        "repro.memory.dram.DDR4Channel._map"
      ],
      "dispatches": [],
      "line": 110,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DDR4Channel.access"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 161,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DDR4Channel.utilization"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMStats.accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 81,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMStats.row_hit_rate"
    },
    {
      "calls": [
        "repro.memory.dram.DDR4Channel.__init__"
      ],
      "dispatches": [],
      "line": 171,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMSystem.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 178,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMSystem.access"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 183,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMSystem.stats"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 40,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMTimings._cpu"
    },
    {
      "calls": [
        "repro.memory.dram.DRAMTimings._cpu"
      ],
      "dispatches": [],
      "line": 56,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMTimings.burst_cycles"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMTimings.cycles_per_dram_clock"
    },
    {
      "calls": [
        "repro.memory.dram.DRAMTimings._cpu"
      ],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMTimings.row_conflict_latency"
    },
    {
      "calls": [
        "repro.memory.dram.DRAMTimings._cpu"
      ],
      "dispatches": [],
      "line": 44,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMTimings.row_hit_latency"
    },
    {
      "calls": [
        "repro.memory.dram.DRAMTimings._cpu"
      ],
      "dispatches": [],
      "line": 48,
      "path": "src/repro/memory/dram.py",
      "qual": "repro.memory.dram.DRAMTimings.row_miss_latency"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 28,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.MemoryGeometry.advertised_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 41,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.MemoryGeometry.data_region_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 46,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.MemoryGeometry.metadata_overhead"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.MemoryGeometry.metadata_region_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 32,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.MemoryGeometry.ospa_pages"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.__init__",
        "repro.memory.allocator.VariableAllocator.__init__"
      ],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.PhysicalMemory.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.PhysicalMemory.free_bytes"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 84,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.PhysicalMemory.metadata_address"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 74,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.PhysicalMemory.used_bytes"
    },
    {
      "calls": [
        "repro.memory.allocator.ChunkAllocator.stats"
      ],
      "dispatches": [],
      "line": 81,
      "path": "src/repro/memory/physical.py",
      "qual": "repro.memory.physical.PhysicalMemory.utilization"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 57,
      "path": "src/repro/memory/request.py",
      "qual": "repro.memory.request.AccessResult.critical_accesses"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/memory/request.py",
      "qual": "repro.memory.request.MemAccess.__post_init__"
    },
    {
      "calls": [
        "repro.obs.timeline.build_timeline"
      ],
      "dispatches": [],
      "line": 32,
      "path": "src/repro/obs/export.py",
      "qual": "repro.obs.export.chrome_trace"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 93,
      "path": "src/repro/obs/export.py",
      "qual": "repro.obs.export.events_csv"
    },
    {
      "calls": [
        "repro.obs.metrics.MetricRegistry.collect",
        "repro.obs.timeline.build_timeline",
        "repro.obs.tracer.Tracer.counts",
        "repro.obs.tracer.Tracer.extra_by_source",
        "repro.obs.tracer.Tracer.phase_seconds"
      ],
      "dispatches": [],
      "line": 103,
      "path": "src/repro/obs/export.py",
      "qual": "repro.obs.export.summary"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 78,
      "path": "src/repro/obs/export.py",
      "qual": "repro.obs.export.timeline_csv"
    },
    {
      "calls": [
        "repro.obs.export.chrome_trace"
      ],
      "dispatches": [],
      "line": 72,
      "path": "src/repro/obs/export.py",
      "qual": "repro.obs.export.write_chrome_trace"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 34,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Counter.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 38,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Counter.inc"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Gauge.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Gauge.set"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 67,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Histogram.__init__"
    },
    {
      "calls": [
        "repro.obs.metrics.Histogram.percentile"
      ],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Histogram.as_dict"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Histogram.mean"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 77,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Histogram.observe"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 88,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.Histogram.percentile"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 172,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry._get_or_make"
    },
    {
      "calls": [
        "repro.core.stats.ControllerStats.as_dict",
        "repro.obs.metrics.Histogram.as_dict",
        "repro.obs.timeline.TimelineWindow.as_dict",
        "repro.obs.tracer.TraceEvent.as_dict"
      ],
      "dispatches": [],
      "line": 162,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.collect"
    },
    {
      "calls": [
        "repro.obs.metrics.MetricRegistry._get_or_make"
      ],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.counter"
    },
    {
      "calls": [
        "repro.obs.metrics.MetricRegistry._get_or_make"
      ],
      "dispatches": [],
      "line": 141,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.gauge"
    },
    {
      "calls": [
        "repro.obs.metrics.Histogram.__init__",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 144,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.histogram"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 159,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.names"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 153,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.MetricRegistry.register"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.compression_ratio",
        "repro.core.metadata_cache.MetadataCache.occupancy",
        "repro.core.stats.ControllerStats.bind_registry",
        "repro.memory.allocator.AllocatorStats.observe",
        "repro.memory.allocator.ChunkAllocator.observe",
        "repro.memory.allocator.VariableAllocator.observe",
        "repro.obs.metrics.Histogram.observe",
        "repro.obs.metrics.MetricRegistry.__init__",
        "repro.obs.metrics.MetricRegistry.gauge",
        "repro.obs.metrics.MetricRegistry.histogram",
        "repro.simulation.simulator.UncompressedController.compression_ratio"
      ],
      "dispatches": [],
      "line": 188,
      "path": "src/repro/obs/metrics.py",
      "qual": "repro.obs.metrics.sample_controller"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/obs/timeline.py",
      "qual": "repro.obs.timeline.TimelineWindow.as_dict"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 33,
      "path": "src/repro/obs/timeline.py",
      "qual": "repro.obs.timeline.TimelineWindow.total_extra"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/obs/timeline.py",
      "qual": "repro.obs.timeline.build_timeline"
    },
    {
      "calls": [
        "repro.obs.timeline.build_timeline"
      ],
      "dispatches": [],
      "line": 77,
      "path": "src/repro/obs/timeline.py",
      "qual": "repro.obs.timeline.timeline_digest"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 166,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.NullTracer.emit"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 175,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.NullTracer.events"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 170,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.NullTracer.phase"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 179,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.NullTracer.phase_spans"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 163,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.NullTracer.tick"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 113,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.TraceEvent.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 132,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.TraceEvent.__repr__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 125,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.TraceEvent.as_dict"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 122,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.TraceEvent.source"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 220,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 244,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.counts"
    },
    {
      "calls": [
        "repro.obs.tracer.TraceEvent.__init__"
      ],
      "dispatches": [],
      "line": 233,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.emit"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 251,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.extra_by_source"
    },
    {
      "calls": [
        "repro.obs.tracer._Phase.__init__"
      ],
      "dispatches": [],
      "line": 239,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.phase"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 264,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.phase_seconds"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 230,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.tick"
    },
    {
      "calls": [
        "repro.obs.tracer.Tracer.extra_by_source"
      ],
      "dispatches": [],
      "line": 260,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.Tracer.total_extra"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 142,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer._NullPhase.__enter__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 145,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer._NullPhase.__exit__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 197,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer._Phase.__enter__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 201,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer._Phase.__exit__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 192,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer._Phase.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 277,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.filter_events"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 272,
      "path": "src/repro/obs/tracer.py",
      "qual": "repro.obs.tracer.known_event"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.DynamicBudget.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.DynamicBudget.ratio_at"
    },
    {
      "calls": [
        "repro.osmodel.cgroups.DynamicBudget.ratio_at"
      ],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.DynamicBudget.resident_limit"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 67,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.ScaledBudget.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 75,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.ScaledBudget.factor_at"
    },
    {
      "calls": [
        "repro.osmodel.cgroups.DynamicBudget.resident_limit",
        "repro.osmodel.cgroups.ScaledBudget.factor_at",
        "repro.osmodel.cgroups.ScaledBudget.resident_limit",
        "repro.osmodel.cgroups.StaticBudget.resident_limit"
      ],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.ScaledBudget.resident_limit"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 23,
      "path": "src/repro/osmodel/cgroups.py",
      "qual": "repro.osmodel.cgroups.StaticBudget.resident_limit"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 64,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.LRUPagingSimulator.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 105,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.LRUPagingSimulator.drop"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.LRUPagingSimulator.evict_coldest"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.LRUPagingSimulator.resident_pages"
    },
    {
      "calls": [
        "repro.osmodel.cgroups.DynamicBudget.resident_limit",
        "repro.osmodel.cgroups.ScaledBudget.resident_limit",
        "repro.osmodel.cgroups.StaticBudget.resident_limit"
      ],
      "dispatches": [],
      "line": 70,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.LRUPagingSimulator.touch"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 57,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.PagingCostModel.runtime"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 35,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.PagingStats.fault_rate"
    },
    {
      "calls": [
        "repro._util.stable_seed"
      ],
      "dispatches": [],
      "line": 113,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.reference_string"
    },
    {
      "calls": [
        "repro.osmodel.paging.LRUPagingSimulator.__init__",
        "repro.osmodel.paging.LRUPagingSimulator.touch",
        "repro.osmodel.paging.PagingCostModel.runtime",
        "repro.osmodel.paging.reference_string"
      ],
      "dispatches": [],
      "line": 142,
      "path": "src/repro/osmodel/paging.py",
      "qual": "repro.osmodel.paging.run_capacity_simulation"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 27,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 38,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.allocate_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 62,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.allocated_pages"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.free_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 66,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.free_pages"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 69,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.is_allocated"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 81,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.take_cold_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 74,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.take_free_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 54,
      "path": "src/repro/osmodel/vm.py",
      "qual": "repro.osmodel.vm.VirtualMemory.touch"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 326,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCampaign.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 363,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCampaign.all_recovered"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 355,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCampaign.oom_escaped"
    },
    {
      "calls": [
        "repro.inject.campaign.CellOutcome.as_row",
        "repro.pressure.campaign.PressureCellOutcome.as_row"
      ],
      "dispatches": [],
      "line": 366,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCampaign.rows"
    },
    {
      "calls": [
        "repro.pressure.campaign.pressure_cell"
      ],
      "dispatches": [],
      "line": 342,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCampaign.run"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 359,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCampaign.unreconciled"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 131,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.PressureCellOutcome.as_row"
    },
    {
      "calls": [
        "repro.inject.campaign.matches",
        "repro.obs.tracer.Tracer.counts",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 156,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign._reconcile"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.parse_pressure_spec"
    },
    {
      "calls": [
        "repro._util.stable_seed",
        "repro.core.ballooning.BalloonDriver.__init__",
        "repro.core.config.compresso_config",
        "repro.core.controller.CompressedMemoryController.__init__",
        "repro.obs.tracer.Tracer.__init__",
        "repro.obs.tracer.Tracer.counts",
        "repro.osmodel.vm.VirtualMemory.__init__",
        "repro.pressure.campaign._reconcile",
        "repro.pressure.campaign.pressure_cell.one_write",
        "repro.pressure.campaign.run_recovery_drill",
        "repro.pressure.controller.PressureController.__init__",
        "repro.pressure.controller.PressureController.metrics",
        "repro.pressure.controller.PressureController.step",
        "repro.runner.cache.ResultCache.get",
        "repro.workloads.bursts.BurstSchedule.rate_at"
      ],
      "dispatches": [],
      "line": 226,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.pressure_cell"
    },
    {
      "calls": [
        "repro.compression.bitstream.BitWriter.write",
        "repro.core.controller.CompressedMemoryController.free_page",
        "repro.osmodel.paging.LRUPagingSimulator.touch",
        "repro.osmodel.vm.VirtualMemory.allocate_page",
        "repro.osmodel.vm.VirtualMemory.free_page",
        "repro.osmodel.vm.VirtualMemory.is_allocated",
        "repro.osmodel.vm.VirtualMemory.touch",
        "repro.pressure.controller.PressureController.install",
        "repro.pressure.controller.PressureController.write",
        "repro.workloads.bursts.BurstSchedule.incompressible_fraction",
        "repro.workloads.datagen.make_line"
      ],
      "dispatches": [],
      "line": 258,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.pressure_cell.one_write"
    },
    {
      "calls": [
        "repro.core.ballooning.BalloonDriver.deflate",
        "repro.core.ballooning.BalloonDriver.unprotect",
        "repro.core.controller.CompressedMemoryController.scrub",
        "repro.osmodel.vm.VirtualMemory.free_page",
        "repro.osmodel.vm.VirtualMemory.is_allocated",
        "repro.pressure.controller.PressureController.free",
        "repro.pressure.controller.PressureController.step"
      ],
      "dispatches": [],
      "line": 201,
      "path": "src/repro/pressure/campaign.py",
      "qual": "repro.pressure.campaign.run_recovery_drill"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 85,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureConfig.__post_init__"
    },
    {
      "calls": [
        "repro.obs.metrics.Histogram.__init__",
        "repro.osmodel.paging.LRUPagingSimulator.__init__",
        "repro.pressure.controller.TokenBucket.__init__"
      ],
      "dispatches": [],
      "line": 201,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.__init__"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.pressure.controller.TokenBucket.take",
        "repro.pressure.controller.TokenBucket.wait_clocks"
      ],
      "dispatches": [],
      "line": 319,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._admit"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.osmodel.cgroups.DynamicBudget.resident_limit",
        "repro.osmodel.cgroups.ScaledBudget.resident_limit",
        "repro.osmodel.cgroups.StaticBudget.resident_limit",
        "repro.pressure.controller.PressureController._page_out"
      ],
      "dispatches": [],
      "line": 354,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._enforce_budget"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 406,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._escalation_victim"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.free_page",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.osmodel.paging.LRUPagingSimulator.evict_coldest",
        "repro.osmodel.vm.VirtualMemory.free_page"
      ],
      "dispatches": [],
      "line": 367,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._page_out"
    },
    {
      "calls": [
        "repro.memory.allocator.AllocatorStats.observe",
        "repro.memory.allocator.ChunkAllocator.observe",
        "repro.memory.allocator.VariableAllocator.observe",
        "repro.obs.metrics.Histogram.observe",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.osmodel.paging.LRUPagingSimulator.touch",
        "repro.osmodel.vm.VirtualMemory.touch",
        "repro.pressure.controller.PressureController._admit",
        "repro.pressure.controller.PressureController._enforce_budget",
        "repro.pressure.controller.PressureController._tenant",
        "repro.pressure.controller.PressureController._update_pressure_state",
        "repro.pressure.controller.PressureController._watchdog"
      ],
      "dispatches": [],
      "line": 277,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._request"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 494,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._tenant"
    },
    {
      "calls": [
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.pressure.controller.PressureController.utilization"
      ],
      "dispatches": [],
      "line": 428,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._update_pressure_state"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.scrub",
        "repro.obs.tracer.NullTracer.emit",
        "repro.obs.tracer.Tracer.emit",
        "repro.pressure.controller.PressureController._escalation_victim",
        "repro.pressure.controller.PressureController._page_out",
        "repro.pressure.controller.PressureController._update_pressure_state"
      ],
      "dispatches": [],
      "line": 379,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController._watchdog"
    },
    {
      "calls": [
        "repro.osmodel.cgroups.DynamicBudget.resident_limit",
        "repro.osmodel.cgroups.ScaledBudget.resident_limit",
        "repro.osmodel.cgroups.StaticBudget.resident_limit",
        "repro.pressure.controller.jain_index"
      ],
      "dispatches": [],
      "line": 449,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.fairness"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.free_page",
        "repro.osmodel.paging.LRUPagingSimulator.drop",
        "repro.osmodel.vm.VirtualMemory.free_page",
        "repro.pressure.controller.PressureController._tenant",
        "repro.pressure.controller.PressureController._update_pressure_state"
      ],
      "dispatches": [],
      "line": 262,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.free"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.install_page",
        "repro.pressure.controller.PressureController._request",
        "repro.simulation.simulator.UncompressedController.install_page"
      ],
      "dispatches": [],
      "line": 246,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.install"
    },
    {
      "calls": [
        "repro.obs.metrics.Histogram.percentile",
        "repro.pressure.controller.PressureController.fairness",
        "repro.pressure.controller.PressureController.utilization"
      ],
      "dispatches": [],
      "line": 462,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.metrics"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.read_line",
        "repro.osmodel.paging.LRUPagingSimulator.touch",
        "repro.osmodel.vm.VirtualMemory.touch",
        "repro.pressure.controller.PressureController._tenant",
        "repro.simulation.simulator.UncompressedController.read_line"
      ],
      "dispatches": [],
      "line": 253,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.read"
    },
    {
      "calls": [
        "repro.pressure.controller.PressureController._update_pressure_state",
        "repro.pressure.controller.PressureController._watchdog"
      ],
      "dispatches": [],
      "line": 270,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.step"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 420,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.utilization"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.write_line",
        "repro.pressure.controller.PressureController._request",
        "repro.simulation.simulator.UncompressedController.write_line"
      ],
      "dispatches": [],
      "line": 239,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.PressureController.write"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.TenantSpec.__post_init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 128,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.TokenBucket.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.TokenBucket._refill"
    },
    {
      "calls": [
        "repro.pressure.controller.TokenBucket._refill"
      ],
      "dispatches": [],
      "line": 144,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.TokenBucket.take"
    },
    {
      "calls": [
        "repro.pressure.controller.TokenBucket._refill"
      ],
      "dispatches": [],
      "line": 152,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.TokenBucket.wait_clocks"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/pressure/controller.py",
      "qual": "repro.pressure.controller.jain_index"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 36,
      "path": "src/repro/results/cli.py",
      "qual": "repro.results.cli._default_sources"
    },
    {
      "calls": [
        "repro.results.index.ResultsIndex.ingest_bench_file",
        "repro.results.index.ResultsIndex.ingest_journal"
      ],
      "dispatches": [],
      "line": 41,
      "path": "src/repro/results/cli.py",
      "qual": "repro.results.cli._ingest"
    },
    {
      "calls": [
        "repro.results.compare.compare_runs",
        "repro.results.compare.render_comparison",
        "repro.results.index.ResultsIndex.__init__",
        "repro.runner.journal.RunJournal.__init__",
        "repro.runner.journal.RunJournal.event"
      ],
      "dispatches": [],
      "line": 129,
      "path": "src/repro/results/cli.py",
      "qual": "repro.results.cli.compare_main"
    },
    {
      "calls": [
        "repro.obs.tracer.Tracer.counts",
        "repro.results.cli._default_sources",
        "repro.results.cli._ingest",
        "repro.results.index.ResultsIndex.__init__",
        "repro.results.index.ResultsIndex.counts",
        "repro.results.index.ResultsIndex.metric_names",
        "repro.results.index.ResultsIndex.resolve_run",
        "repro.results.index.ResultsIndex.runs",
        "repro.runner.cache.ResultCache.get",
        "repro.runner.journal.RunJournal.__init__",
        "repro.runner.journal.RunJournal.event"
      ],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/results/cli.py",
      "qual": "repro.results.cli.index_main"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 100,
      "path": "src/repro/results/compare.py",
      "qual": "repro.results.compare.Comparison.improvements"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 96,
      "path": "src/repro/results/compare.py",
      "qual": "repro.results.compare.Comparison.regressions"
    },
    {
      "calls": [
        "repro.results.compare.metric_direction",
        "repro.results.stats.min_achievable_p",
        "repro.results.stats.significance"
      ],
      "dispatches": [],
      "line": 104,
      "path": "src/repro/results/compare.py",
      "qual": "repro.results.compare._judge"
    },
    {
      "calls": [
        "repro.results.compare._judge",
        "repro.results.index.ResultsIndex.metric_samples",
        "repro.results.index.ResultsIndex.resolve_run"
      ],
      "dispatches": [],
      "line": 134,
      "path": "src/repro/results/compare.py",
      "qual": "repro.results.compare.compare_runs"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 56,
      "path": "src/repro/results/compare.py",
      "qual": "repro.results.compare.metric_direction"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 165,
      "path": "src/repro/results/compare.py",
      "qual": "repro.results.compare.render_comparison"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 132,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.__enter__"
    },
    {
      "calls": [
        "repro.results.index.ResultsIndex.close"
      ],
      "dispatches": [],
      "line": 135,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.__exit__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 125,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 353,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex._ingest_bench_event"
    },
    {
      "calls": [
        "repro.results.index.flatten_metrics",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 329,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex._ingest_unit_end"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 362,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex._upsert_run"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 315,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.bench_history"
    },
    {
      "calls": [
        "repro.results.index.ResultsIndex.close"
      ],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.close"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 143,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.counts"
    },
    {
      "calls": [
        "repro.results.index.ResultsIndex._upsert_run",
        "repro.results.index.ResultsIndex.counts",
        "repro.results.index._int_or_null",
        "repro.results.index.flatten_metrics",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 202,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.ingest_bench_file"
    },
    {
      "calls": [
        "repro.results.index.ResultsIndex._ingest_bench_event",
        "repro.results.index.ResultsIndex._ingest_unit_end",
        "repro.results.index.ResultsIndex._upsert_run",
        "repro.results.index.ResultsIndex.counts",
        "repro.results.index._text_or_null",
        "repro.runner.cache.ResultCache.get",
        "repro.runner.journal.read_journal",
        "repro.runner.journal.validate_event"
      ],
      "dispatches": [],
      "line": 151,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.ingest_journal"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 287,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.metric_names"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 293,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.metric_samples"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 264,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.resolve_run"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 257,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.runs"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 281,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.ResultsIndex.units_for"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 384,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index._int_or_null"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 378,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index._text_or_null"
    },
    {
      "calls": [
        "repro.results.index.flatten_metrics"
      ],
      "dispatches": [],
      "line": 101,
      "path": "src/repro/results/index.py",
      "qual": "repro.results.index.flatten_metrics"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats._normal_cdf"
    },
    {
      "calls": [
        "repro.results.stats.mean"
      ],
      "dispatches": [],
      "line": 57,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.bootstrap_ci"
    },
    {
      "calls": [
        "repro.results.stats._normal_cdf"
      ],
      "dispatches": [],
      "line": 163,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.mann_whitney"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.mean"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 145,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.min_achievable_p"
    },
    {
      "calls": [
        "repro.results.stats.mean"
      ],
      "dispatches": [],
      "line": 104,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.permutation_test"
    },
    {
      "calls": [
        "repro.results.stats.mann_whitney",
        "repro.results.stats.mean",
        "repro.results.stats.permutation_test"
      ],
      "dispatches": [],
      "line": 222,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.significance"
    },
    {
      "calls": [
        "repro.results.stats.mean"
      ],
      "dispatches": [],
      "line": 43,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.stddev"
    },
    {
      "calls": [
        "repro.results.stats.mean",
        "repro.results.stats.stddev"
      ],
      "dispatches": [],
      "line": 83,
      "path": "src/repro/results/stats.py",
      "qual": "repro.results.stats.welch_t"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 48,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 122,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache.__len__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 52,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache._path"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 101,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache._quarantine"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 113,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache.clear"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache._path",
        "repro.runner.cache.ResultCache._quarantine",
        "repro.runner.cache.ResultCache.get",
        "repro.runner.cache.payload_checksum"
      ],
      "dispatches": [],
      "line": 55,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache.get"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache._path",
        "repro.runner.cache.payload_checksum",
        "repro.runner.units.canonical",
        "repro.runner.units.code_version"
      ],
      "dispatches": [],
      "line": 82,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.ResultCache.put"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 37,
      "path": "src/repro/runner/cache.py",
      "qual": "repro.runner.cache.payload_checksum"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 123,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.runner.journal.RunJournal.event",
        "repro.runner.units.WorkUnit.seed"
      ],
      "dispatches": [],
      "line": 337,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._finish"
    },
    {
      "calls": [
        "repro.runner.journal.RunJournal.event",
        "repro.runner.units.WorkUnit.seed"
      ],
      "dispatches": [],
      "line": 326,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._journal_start"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 317,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._normalize"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 371,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._progress_end"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 360,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._progress_line"
    },
    {
      "calls": [
        "repro.runner.executor.Runner._finish",
        "repro.runner.journal.RunJournal.event"
      ],
      "dispatches": [],
      "line": 282,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._retry_or_fail"
    },
    {
      "calls": [
        "repro.results.index.ResultsIndex.close",
        "repro.runner.cache.ResultCache.get",
        "repro.runner.executor.Runner._finish",
        "repro.runner.executor.Runner._normalize",
        "repro.runner.executor.Runner._progress_line",
        "repro.runner.executor.Runner._retry_or_fail",
        "repro.runner.executor.Runner._store",
        "repro.runner.executor._worker"
      ],
      "dispatches": [
        "repro.runner.executor._worker"
      ],
      "line": 200,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._run_isolated"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.put"
      ],
      "dispatches": [],
      "line": 321,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner._store"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 195,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner.cache_hits"
    },
    {
      "calls": [
        "repro.check.flow.callgraph._FunctionAnalyzer.run",
        "repro.inject.campaign.FaultCampaign.run",
        "repro.pressure.campaign.PressureCampaign.run",
        "repro.runner.cache.ResultCache.get",
        "repro.runner.executor.Runner._finish",
        "repro.runner.executor.Runner._journal_start",
        "repro.runner.executor.Runner._normalize",
        "repro.runner.executor.Runner._progress_end",
        "repro.runner.executor.Runner._progress_line",
        "repro.runner.executor.Runner._run_isolated",
        "repro.runner.executor.Runner._store",
        "repro.runner.units.WorkUnit.key",
        "repro.runner.units.WorkUnit.run"
      ],
      "dispatches": [],
      "line": 145,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.Runner.map"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.put"
      ],
      "dispatches": [],
      "line": 74,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor._worker"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 377,
      "path": "src/repro/runner/executor.py",
      "qual": "repro.runner.executor.timing_table"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 164,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal.RunJournal.__init__"
    },
    {
      "calls": [
        "repro.cache.cache.Cache.flush",
        "repro.cache.hierarchy.CacheHierarchy.flush",
        "repro.compression.bitstream.BitWriter.write",
        "repro.core.metadata_cache.MetadataCache.flush",
        "repro.pressure.controller.PressureController.write"
      ],
      "dispatches": [],
      "line": 170,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal.RunJournal.event"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 143,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal._check_int"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 95,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal._check_number_map"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 131,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal._check_sanitizer"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 108,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal._check_timeline"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.runner.journal.read_journal"
      ],
      "dispatches": [],
      "line": 238,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal.find_interrupted"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 218,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal.read_journal"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 188,
      "path": "src/repro/runner/journal.py",
      "qual": "repro.runner.journal.validate_event"
    },
    {
      "calls": [
        "repro.runner.units.unit_key"
      ],
      "dispatches": [],
      "line": 77,
      "path": "src/repro/runner/units.py",
      "qual": "repro.runner.units.WorkUnit.key"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 97,
      "path": "src/repro/runner/units.py",
      "qual": "repro.runner.units.WorkUnit.run"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 80,
      "path": "src/repro/runner/units.py",
      "qual": "repro.runner.units.WorkUnit.seed"
    },
    {
      "calls": [
        "repro.runner.units.canonical"
      ],
      "dispatches": [],
      "line": 23,
      "path": "src/repro/runner/units.py",
      "qual": "repro.runner.units.canonical"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 53,
      "path": "src/repro/runner/units.py",
      "qual": "repro.runner.units.code_version"
    },
    {
      "calls": [
        "repro.compression.bpc._PlaneCoder.encode",
        "repro.core.metadata.PageMetadata.encode",
        "repro.runner.units.canonical",
        "repro.runner.units.code_version"
      ],
      "dispatches": [],
      "line": 101,
      "path": "src/repro/runner/units.py",
      "qual": "repro.runner.units.unit_key"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 49,
      "path": "src/repro/simulation/capacity.py",
      "qual": "repro.simulation.capacity.CapacityResult.relative"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 54,
      "path": "src/repro/simulation/capacity.py",
      "qual": "repro.simulation.capacity.CapacityResult.stalled"
    },
    {
      "calls": [
        "repro.osmodel.cgroups.DynamicBudget.__init__",
        "repro.osmodel.paging.PagingStats.fault_rate",
        "repro.osmodel.paging.run_capacity_simulation"
      ],
      "dispatches": [],
      "line": 62,
      "path": "src/repro/simulation/capacity.py",
      "qual": "repro.simulation.capacity.capacity_impact"
    },
    {
      "calls": [
        "repro.osmodel.cgroups.DynamicBudget.__init__",
        "repro.osmodel.paging.LRUPagingSimulator.__init__",
        "repro.osmodel.paging.LRUPagingSimulator.touch",
        "repro.osmodel.paging.PagingCostModel.runtime",
        "repro.osmodel.paging.PagingStats.fault_rate",
        "repro.osmodel.paging.reference_string"
      ],
      "dispatches": [],
      "line": 103,
      "path": "src/repro/simulation/capacity.py",
      "qual": "repro.simulation.capacity.multicore_capacity_impact"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.IntervalProfile.feature_vector"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 192,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.PointSelection.estimate_ratio"
    },
    {
      "calls": [
        "repro.compression.bpc.BPCCompressor.__init__"
      ],
      "dispatches": [],
      "line": 62,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints._SizeTracker.__init__"
    },
    {
      "calls": [
        "repro.compression.bpc.BPCCompressor.compress",
        "repro.compression.zero.is_zero_line",
        "repro.core.packing.choose_bin",
        "repro.runner.cache.ResultCache.get"
      ],
      "dispatches": [],
      "line": 67,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints._SizeTracker.line_bin_bytes"
    },
    {
      "calls": [
        "repro.obs.metrics.Histogram.mean"
      ],
      "dispatches": [],
      "line": 150,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.kmeans"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.simulation.compresspoints._SizeTracker.__init__",
        "repro.simulation.compresspoints._SizeTracker.line_bin_bytes",
        "repro.simulation.compresspoints.profile_intervals.page_entry",
        "repro.workloads.tracegen.TraceGenerator.__init__",
        "repro.workloads.tracegen.TraceGenerator.events",
        "repro.workloads.tracegen.TraceGenerator.overwrite_class_at",
        "repro.workloads.tracegen.Workload.__init__",
        "repro.workloads.tracegen.Workload.apply_writeback"
      ],
      "dispatches": [],
      "line": 77,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.profile_intervals"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.simulation.compresspoints._SizeTracker.line_bin_bytes",
        "repro.workloads.tracegen.Workload.line_data"
      ],
      "dispatches": [],
      "line": 92,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.profile_intervals.page_entry"
    },
    {
      "calls": [
        "repro.simulation.compresspoints.PointSelection.estimate_ratio"
      ],
      "dispatches": [],
      "line": 225,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.representativeness_error"
    },
    {
      "calls": [
        "repro.simulation.compresspoints.IntervalProfile.feature_vector",
        "repro.simulation.compresspoints.kmeans"
      ],
      "dispatches": [],
      "line": 200,
      "path": "src/repro/simulation/compresspoints.py",
      "qual": "repro.simulation.compresspoints.select_points"
    },
    {
      "calls": [
        "repro.core.config.compresso_config"
      ],
      "dispatches": [],
      "line": 90,
      "path": "src/repro/simulation/configs.py",
      "qual": "repro.simulation.configs.chunk_vs_variable_configs"
    },
    {
      "calls": [
        "repro.core.config.CompressoConfig.replace",
        "repro.core.config.compresso_config"
      ],
      "dispatches": [],
      "line": 54,
      "path": "src/repro/simulation/configs.py",
      "qual": "repro.simulation.configs.optimization_ladder"
    },
    {
      "calls": [
        "repro.core.config.compresso_config",
        "repro.core.config.lcp_align_config",
        "repro.core.config.lcp_config"
      ],
      "dispatches": [],
      "line": 41,
      "path": "src/repro/simulation/configs.py",
      "qual": "repro.simulation.configs.system_config"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 50,
      "path": "src/repro/simulation/full_hierarchy.py",
      "qual": "repro.simulation.full_hierarchy.FullHierarchyResult.llc_mpki"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 55,
      "path": "src/repro/simulation/full_hierarchy.py",
      "qual": "repro.simulation.full_hierarchy.FullHierarchyResult.speedup_over"
    },
    {
      "calls": [
        "repro._util.stable_seed"
      ],
      "dispatches": [],
      "line": 61,
      "path": "src/repro/simulation/full_hierarchy.py",
      "qual": "repro.simulation.full_hierarchy._core_stream"
    },
    {
      "calls": [
        "repro.cache.hierarchy.CacheHierarchy.__init__",
        "repro.cache.hierarchy.CacheHierarchy.access",
        "repro.cache.hierarchy.CacheHierarchy.flush",
        "repro.cache.hierarchy.CacheHierarchy.stats",
        "repro.core.controller.CompressedMemoryController.compression_ratio",
        "repro.core.controller.CompressedMemoryController.flush_metadata",
        "repro.core.controller.CompressedMemoryController.install_page",
        "repro.core.controller.CompressedMemoryController.read_line",
        "repro.core.controller.CompressedMemoryController.write_line",
        "repro.cpu.core.AnalyticCore.__init__",
        "repro.cpu.core.AnalyticCore.advance_instructions",
        "repro.cpu.core.AnalyticCore.stall",
        "repro.memory.dram.DRAMSystem.__init__",
        "repro.simulation.full_hierarchy._core_stream",
        "repro.simulation.simulator.UncompressedController.compression_ratio",
        "repro.simulation.simulator.UncompressedController.flush_metadata",
        "repro.simulation.simulator.UncompressedController.install_page",
        "repro.simulation.simulator.UncompressedController.read_line",
        "repro.simulation.simulator.UncompressedController.write_line",
        "repro.simulation.simulator._build_controller",
        "repro.simulation.simulator._issue",
        "repro.workloads.tracegen.Workload.__init__",
        "repro.workloads.tracegen.Workload.apply_writeback",
        "repro.workloads.tracegen.Workload.page_lines"
      ],
      "dispatches": [],
      "line": 93,
      "path": "src/repro/simulation/full_hierarchy.py",
      "qual": "repro.simulation.full_hierarchy.simulate_full_hierarchy"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 47,
      "path": "src/repro/simulation/multicore.py",
      "qual": "repro.simulation.multicore.MulticoreResult.speedup_over"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.compression_ratio",
        "repro.core.controller.CompressedMemoryController.flush_metadata",
        "repro.core.controller.CompressedMemoryController.install_page",
        "repro.core.stats.ControllerStats.metadata_hit_rate",
        "repro.cpu.core.AnalyticCore.__init__",
        "repro.memory.dram.DRAMSystem.__init__",
        "repro.obs.timeline.timeline_digest",
        "repro.obs.tracer.NullTracer.phase",
        "repro.obs.tracer.Tracer.phase",
        "repro.simulation.simulator.EventEngine.__init__",
        "repro.simulation.simulator.UncompressedController.compression_ratio",
        "repro.simulation.simulator.UncompressedController.flush_metadata",
        "repro.simulation.simulator.UncompressedController.install_page",
        "repro.simulation.simulator._build_controller",
        "repro.workloads.datagen.PageImageGenerator.page_lines",
        "repro.workloads.tracegen.TraceGenerator.__init__",
        "repro.workloads.tracegen.TraceGenerator.events",
        "repro.workloads.tracegen.Workload.__init__",
        "repro.workloads.tracegen.Workload.page_lines"
      ],
      "dispatches": [],
      "line": 56,
      "path": "src/repro/simulation/multicore.py",
      "qual": "repro.simulation.multicore.simulate_multicore"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 26,
      "path": "src/repro/simulation/overall.py",
      "qual": "repro.simulation.overall.OverallResult.overall"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 31,
      "path": "src/repro/simulation/overall.py",
      "qual": "repro.simulation.overall.OverallResult.unconstrained_bound"
    },
    {
      "calls": [
        "repro.simulation.capacity.CapacityResult.relative",
        "repro.simulation.full_hierarchy.FullHierarchyResult.speedup_over",
        "repro.simulation.multicore.MulticoreResult.speedup_over",
        "repro.simulation.simulator.SimulationResult.speedup_over"
      ],
      "dispatches": [],
      "line": 35,
      "path": "src/repro/simulation/overall.py",
      "qual": "repro.simulation.overall.combine"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 184,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.EventEngine.__init__"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.read_line",
        "repro.core.controller.CompressedMemoryController.write_line",
        "repro.cpu.core.AnalyticCore.advance_instructions",
        "repro.cpu.core.AnalyticCore.stall",
        "repro.simulation.simulator.UncompressedController.read_line",
        "repro.simulation.simulator.UncompressedController.write_line",
        "repro.simulation.simulator._issue",
        "repro.workloads.tracegen.TraceGenerator.overwrite_class_at",
        "repro.workloads.tracegen.Workload.apply_writeback"
      ],
      "dispatches": [],
      "line": 197,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.EventEngine.step"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 105,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.SimulationResult.ipc"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 115,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.SimulationResult.mean_ratio"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 108,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.SimulationResult.speedup_over"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 124,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.UncompressedController.__init__"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 147,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.UncompressedController.compression_ratio"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 150,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.UncompressedController.flush_metadata"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 144,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.UncompressedController.install_page"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 129,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.UncompressedController.read_line"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 136,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.UncompressedController.write_line"
    },
    {
      "calls": [
        "repro.core.config.CompressoConfig.replace",
        "repro.core.controller.CompressedMemoryController.__init__",
        "repro.simulation.configs.system_config",
        "repro.simulation.simulator.UncompressedController.__init__"
      ],
      "dispatches": [],
      "line": 154,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator._build_controller"
    },
    {
      "calls": [
        "repro.memory.dram.DRAMSystem.access"
      ],
      "dispatches": [],
      "line": 314,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator._issue"
    },
    {
      "calls": [
        "repro.simulation.simulator.simulate"
      ],
      "dispatches": [],
      "line": 340,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.run_benchmark_systems"
    },
    {
      "calls": [
        "repro.core.controller.CompressedMemoryController.compression_ratio",
        "repro.core.controller.CompressedMemoryController.flush_metadata",
        "repro.core.controller.CompressedMemoryController.install_page",
        "repro.core.controller.CompressedMemoryController.prime_size_cache",
        "repro.core.stats.ControllerStats.metadata_hit_rate",
        "repro.cpu.core.AnalyticCore.__init__",
        "repro.inject.faults.FaultInjector.__init__",
        "repro.inject.faults.FaultInjector.bind",
        "repro.inject.faults.FaultInjector.step",
        "repro.memory.dram.DRAMSystem.__init__",
        "repro.obs.timeline.timeline_digest",
        "repro.obs.tracer.NullTracer.phase",
        "repro.obs.tracer.Tracer.phase",
        "repro.simulation.simulator.EventEngine.__init__",
        "repro.simulation.simulator.EventEngine.step",
        "repro.simulation.simulator.UncompressedController.compression_ratio",
        "repro.simulation.simulator.UncompressedController.flush_metadata",
        "repro.simulation.simulator.UncompressedController.install_page",
        "repro.simulation.simulator._build_controller",
        "repro.workloads.tracegen.TraceGenerator.__init__",
        "repro.workloads.tracegen.TraceGenerator.events",
        "repro.workloads.tracegen.Workload.__init__",
        "repro.workloads.tracegen.Workload.page_lines"
      ],
      "dispatches": [],
      "line": 229,
      "path": "src/repro/simulation/simulator.py",
      "qual": "repro.simulation.simulator.simulate"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 65,
      "path": "src/repro/workloads/bursts.py",
      "qual": "repro.workloads.bursts.BurstSchedule.__post_init__"
    },
    {
      "calls": [
        "repro.workloads.bursts._plateau"
      ],
      "dispatches": [],
      "line": 87,
      "path": "src/repro/workloads/bursts.py",
      "qual": "repro.workloads.bursts.BurstSchedule.incompressible_fraction"
    },
    {
      "calls": [
        "repro.workloads.bursts._plateau"
      ],
      "dispatches": [],
      "line": 72,
      "path": "src/repro/workloads/bursts.py",
      "qual": "repro.workloads.bursts.BurstSchedule.rate_at"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 99,
      "path": "src/repro/workloads/bursts.py",
      "qual": "repro.workloads.bursts.BurstSchedule.receded"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 43,
      "path": "src/repro/workloads/bursts.py",
      "qual": "repro.workloads.bursts._plateau"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 107,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.LinePool.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.workloads.datagen._rng",
        "repro.workloads.datagen.make_line"
      ],
      "dispatches": [],
      "line": 114,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.LinePool.line"
    },
    {
      "calls": [
        "repro.workloads.datagen.LinePool.__init__"
      ],
      "dispatches": [],
      "line": 137,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.PageImageGenerator.__init__"
    },
    {
      "calls": [
        "repro.workloads.datagen.PageImageGenerator.page_class",
        "repro.workloads.datagen.PageImageGenerator.secondary_class",
        "repro.workloads.datagen._rng"
      ],
      "dispatches": [],
      "line": 169,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.PageImageGenerator.line"
    },
    {
      "calls": [
        "repro.workloads.datagen._rng"
      ],
      "dispatches": [],
      "line": 155,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.PageImageGenerator.page_class"
    },
    {
      "calls": [
        "repro.workloads.datagen.PageImageGenerator.line"
      ],
      "dispatches": [],
      "line": 187,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.PageImageGenerator.page_lines"
    },
    {
      "calls": [
        "repro.workloads.datagen._rng"
      ],
      "dispatches": [],
      "line": 161,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.PageImageGenerator.secondary_class"
    },
    {
      "calls": [
        "repro._util.stable_seed"
      ],
      "dispatches": [],
      "line": 55,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen._rng"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 60,
      "path": "src/repro/workloads/datagen.py",
      "qual": "repro.workloads.datagen.make_line"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 32,
      "path": "src/repro/workloads/mixes.py",
      "qual": "repro.workloads.mixes.mix_profiles"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 69,
      "path": "src/repro/workloads/profiles.py",
      "qual": "repro.workloads.profiles.BenchmarkProfile.phase_at"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 79,
      "path": "src/repro/workloads/profiles.py",
      "qual": "repro.workloads.profiles._p"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 257,
      "path": "src/repro/workloads/profiles.py",
      "qual": "repro.workloads.profiles.get_profile"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 96,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.TraceGenerator.__init__"
    },
    {
      "calls": [
        "repro._util.stable_seed"
      ],
      "dispatches": [],
      "line": 101,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.TraceGenerator.events"
    },
    {
      "calls": [
        "repro.workloads.profiles.BenchmarkProfile.phase_at"
      ],
      "dispatches": [],
      "line": 138,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.TraceGenerator.overwrite_class_at"
    },
    {
      "calls": [
        "repro.workloads.datagen.PageImageGenerator.__init__"
      ],
      "dispatches": [],
      "line": 42,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.Workload.__init__"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.workloads.tracegen.Workload.line_data"
      ],
      "dispatches": [],
      "line": 70,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.Workload.apply_writeback"
    },
    {
      "calls": [
        "repro.runner.cache.ResultCache.get",
        "repro.workloads.datagen.PageImageGenerator.line"
      ],
      "dispatches": [],
      "line": 61,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.Workload.line_data"
    },
    {
      "calls": [
        "repro.workloads.tracegen.Workload.line_data"
      ],
      "dispatches": [],
      "line": 86,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.Workload.page_lines"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 89,
      "path": "src/repro/workloads/tracegen.py",
      "qual": "repro.workloads.tracegen.Workload.touched_lines"
    },
    {
      "calls": [
        "repro.check.driver.run_lint",
        "repro.check.findings.format_finding"
      ],
      "dispatches": [],
      "line": 40,
      "path": "scripts/check_docs.py",
      "qual": "scripts.check_docs.main"
    },
    {
      "calls": [
        "repro.check.driver.run_lint",
        "repro.check.findings.format_finding"
      ],
      "dispatches": [],
      "line": 36,
      "path": "scripts/check_instrumentation.py",
      "qual": "scripts.check_instrumentation.main"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 34,
      "path": "scripts/update_experiments_md.py",
      "qual": "scripts.update_experiments_md.extract_summaries"
    },
    {
      "calls": [
        "scripts.update_experiments_md.extract_summaries",
        "scripts.update_experiments_md.regenerate_text",
        "scripts.update_experiments_md.update_doc"
      ],
      "dispatches": [],
      "line": 103,
      "path": "scripts/update_experiments_md.py",
      "qual": "scripts.update_experiments_md.main"
    },
    {
      "calls": [
        "repro.analysis.__main__._invoke",
        "repro.analysis.report.render",
        "repro.runner.cache.ResultCache.__init__",
        "repro.runner.executor.Runner.__init__",
        "repro.runner.journal.RunJournal.__init__"
      ],
      "dispatches": [],
      "line": 60,
      "path": "scripts/update_experiments_md.py",
      "qual": "scripts.update_experiments_md.regenerate_text"
    },
    {
      "calls": [],
      "dispatches": [],
      "line": 83,
      "path": "scripts/update_experiments_md.py",
      "qual": "scripts.update_experiments_md.update_doc"
    }
  ],
  "modules": [
    "repro",
    "repro._util",
    "repro.analysis",
    "repro.analysis.__main__",
    "repro.analysis.bench",
    "repro.analysis.experiments",
    "repro.analysis.export",
    "repro.analysis.report",
    "repro.cache",
    "repro.cache.cache",
    "repro.cache.hierarchy",
    "repro.check",
    "repro.check.builtin_rules",
    "repro.check.driver",
    "repro.check.findings",
    "repro.check.flow",
    "repro.check.flow.callgraph",
    "repro.check.flow.engine",
    "repro.check.flow.rules",
    "repro.check.flow.symbols",
    "repro.check.rules",
    "repro.check.sanitizer",
    "repro.compression",
    "repro.compression.base",
    "repro.compression.bdi",
    "repro.compression.bitstream",
    "repro.compression.bpc",
    "repro.compression.cpack",
    "repro.compression.fpc",
    "repro.compression.lz",
    "repro.compression.selector",
    "repro.compression.vector",
    "repro.compression.vector.batch",
    "repro.compression.vector.bdi",
    "repro.compression.vector.bpc",
    "repro.compression.vector.fpc",
    "repro.compression.vector.layout",
    "repro.compression.vector.zero",
    "repro.compression.zero",
    "repro.core",
    "repro.core.allocator",
    "repro.core.ballooning",
    "repro.core.config",
    "repro.core.controller",
    "repro.core.lcp",
    "repro.core.linepack",
    "repro.core.metadata",
    "repro.core.metadata_cache",
    "repro.core.packing",
    "repro.core.predictor",
    "repro.core.stats",
    "repro.cpu",
    "repro.cpu.core",
    "repro.energy.area",
    "repro.energy.model",
    "repro.inject",
    "repro.inject.campaign",
    "repro.inject.faults",
    "repro.memory",
    "repro.memory.allocator",
    "repro.memory.dram",
    "repro.memory.physical",
    "repro.memory.request",
    "repro.obs",
    "repro.obs.export",
    "repro.obs.metrics",
    "repro.obs.timeline",
    "repro.obs.tracer",
    "repro.osmodel",
    "repro.osmodel.cgroups",
    "repro.osmodel.paging",
    "repro.osmodel.vm",
    "repro.pressure",
    "repro.pressure.campaign",
    "repro.pressure.controller",
    "repro.results",
    "repro.results.cli",
    "repro.results.compare",
    "repro.results.index",
    "repro.results.stats",
    "repro.runner",
    "repro.runner.cache",
    "repro.runner.executor",
    "repro.runner.journal",
    "repro.runner.units",
    "repro.simulation",
    "repro.simulation.capacity",
    "repro.simulation.compresspoints",
    "repro.simulation.configs",
    "repro.simulation.full_hierarchy",
    "repro.simulation.multicore",
    "repro.simulation.overall",
    "repro.simulation.simulator",
    "repro.workloads",
    "repro.workloads.bursts",
    "repro.workloads.datagen",
    "repro.workloads.mixes",
    "repro.workloads.profiles",
    "repro.workloads.tracegen",
    "scripts.check_docs",
    "scripts.check_instrumentation",
    "scripts.update_experiments_md"
  ],
  "schema": "repro-callgraph/1"
}
