"""Structured lint findings.

A :class:`Finding` is the unit every rule reports: repo-relative path,
1-based line, the rule id that fired, a severity, and a human message.
Findings are frozen dataclasses so they sort deterministically, hash
into sets (the parallel driver deduplicates on merge), and cross the
``multiprocessing`` boundary by value.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Recognized severities, most severe first.  ``error`` findings fail
#: the lint run; ``warning`` findings are reported but do not.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One problem a rule found at one source location."""

    path: str          # repo-relative, forward slashes
    line: int          # 1-based; 0 = whole file
    rule: str          # rule id, e.g. "mutable-default"
    severity: str      # one of SEVERITIES
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


def format_finding(finding: Finding) -> str:
    """Render one finding the way compilers do: ``path:line: message``."""
    location = f"{finding.path}:{finding.line}" if finding.line else finding.path
    return f"{location}: [{finding.rule}] {finding.severity}: {finding.message}"


def to_sarif(findings) -> dict:
    """SARIF-lite: the subset of SARIF 2.1.0 CI viewers consume.

    One run, one result per finding, rule ids as ruleId, severity
    mapped onto SARIF levels.  Deterministic (findings sorted) so the
    artifact diffs cleanly between lint runs.
    """
    results = []
    rules_seen = {}
    for finding in sorted(findings):
        rules_seen.setdefault(finding.rule, {"id": finding.rule})
        results.append({
            "ruleId": finding.rule,
            "level": "error" if finding.severity == "error" else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
        })
    return {
        "version": "2.1.0",
        "$schema": ("https://json.schemastore.org/sarif-2.1.0.json"),
        "runs": [{
            "tool": {"driver": {
                "name": "reprolint",
                "rules": [rules_seen[rule_id]
                          for rule_id in sorted(rules_seen)],
            }},
            "results": results,
        }],
    }
