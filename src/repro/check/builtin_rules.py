"""Built-in reprolint rules (the catalog lives in docs/LINTING.md).

Each rule enforces an invariant the repo used to check with ad-hoc
regex scripts — or could not check at all.  Rules that need to inspect
runtime types (``ControllerStats`` fields, the ``EVENT_SOURCES``
registry, config dataclasses) import them lazily inside ``check`` so
this module never drags ``repro.core`` in at import time.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from .findings import Finding
from .rules import ModuleSource, ProjectRule, Rule, dotted_name, register

#: Directories whose modules form the simulated hot path: wall-clock
#: reads or unseeded randomness here would break run reproducibility
#: and content-addressed result caching.
HOT_PATH_DIRS = ("src/repro/core", "src/repro/memory", "src/repro/compression",
                 "src/repro/compression/vector", "src/repro/pressure")

#: Markdown files whose relative links must resolve.
DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/RUNNER.md",
        "docs/OBSERVABILITY.md", "docs/LINTING.md", "docs/ROBUSTNESS.md",
        "docs/KERNELS.md", "docs/RESULTS.md", "docs/PRESSURE.md",
        "docs/FLOWCHECK.md", "docs/SHARDING.md")

#: (module path, class name) pairs whose public fields must be named in
#: the documentation set scanned by ``config-knob-documented``.
CONFIG_CLASSES = (
    ("src/repro/core/config.py", "CompressoConfig"),
    ("src/repro/simulation/simulator.py", "SimulationConfig"),
    ("src/repro/analysis/experiments.py", "ExperimentScale"),
    ("src/repro/pressure/controller.py", "PressureConfig"),
    ("src/repro/shard/supervisor.py", "ShardRunConfig"),
)

#: How many lines around a stats increment may hold its tracer call
#: (mirrors the historical ``scripts/check_instrumentation.py`` rule).
NEIGHBORHOOD = 4

_TRACER_CALL = re.compile(r"\.(emit|tick)\(")
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:", "#")


@register
class ModuleDocstringRule(Rule):
    """Every module under ``src/repro/`` opens with a docstring."""

    id = "module-docstring"
    severity = "error"
    description = "src/repro modules must have a module docstring"

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if not ast.get_docstring(module.tree):
            yield module.finding(1, self.id, self.severity,
                                 "missing module docstring")


@register
class StatsEmitRule(Rule):
    """Every ``stats.<counter> +=`` in core/ has a nearby emit/tick.

    The observability layer reconciles trace timelines against the
    aggregate counters (docs/OBSERVABILITY.md); an increment without a
    matching tracer call would silently desynchronize them.
    """

    id = "stats-emit"
    severity = "error"
    description = ("stats counter increments in core/ need a tracer "
                   "emit/tick within a few lines")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro/core")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            target = node.target
            if not isinstance(target, ast.Attribute):
                continue
            base = dotted_name(target.value)
            if base is None or base.split(".")[-1] != "stats":
                continue
            low = max(0, node.lineno - 1 - NEIGHBORHOOD)
            high = min(len(module.lines), node.lineno + NEIGHBORHOOD)
            window = "\n".join(module.lines[low:high])
            if not _TRACER_CALL.search(window):
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    f"stats.{target.attr} += has no tracer emit/tick "
                    f"within {NEIGHBORHOOD} lines")


@register
class EmitRegisteredRule(Rule):
    """String-literal event names passed to ``.emit(`` are registered.

    An unregistered name would silently drop out of the per-source
    timelines built by ``repro.obs.timeline``.
    """

    id = "emit-registered"
    severity = "error"
    description = ("event names emitted as string literals must exist "
                   "in repro.obs.tracer.EVENT_SOURCES")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        from ..obs.tracer import EVENT_SOURCES
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit" and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                name = first.value
                if name not in EVENT_SOURCES:
                    yield module.finding(
                        node.lineno, self.id, self.severity,
                        f"emit({name!r}) is not registered in "
                        f"repro.obs.tracer.EVENT_SOURCES")


@register
class JournalEventRegisteredRule(Rule):
    """String-literal event names journaled via ``.event(`` are typed.

    The run journal validates events against
    ``repro.runner.journal.EVENT_SCHEMA`` and the results index skips
    anything unknown (docs/RESULTS.md) — a call site journaling an
    unregistered name would write records that every downstream
    consumer silently drops.
    """

    id = "journal-event-registered"
    severity = "error"
    description = ("event names passed to RunJournal.event() as string "
                   "literals must exist in repro.runner.EVENT_SCHEMA")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro", "scripts")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        from ..runner.journal import EVENT_SCHEMA
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "event" and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                name = first.value
                if name not in EVENT_SCHEMA:
                    yield module.finding(
                        node.lineno, self.id, self.severity,
                        f"event({name!r}) is not registered in "
                        f"repro.runner.journal.EVENT_SCHEMA")


@register
class HotPathWallClockRule(Rule):
    """No wall-clock or nondeterministic randomness in hot-path modules.

    Simulated time comes from the tracer's access clock; wall-clock
    reads or unseeded RNG calls in core/, memory/ or compression/ would
    make results irreproducible and poison the content-addressed
    experiment cache (docs/RUNNER.md).
    """

    id = "hot-path-wallclock"
    severity = "error"
    description = ("no time.*/random.* calls inside core/, memory/, "
                   "compression/ (incl. vector/), pressure/ hot paths")

    #: Call-name prefixes that read the wall clock or global RNG state.
    BANNED = ("time.", "random.", "np.random.", "numpy.random.", "datetime.")

    #: Explicitly-seeded RNG constructors are the *fix* for global RNG
    #: use, so ``np.random.RandomState(stable_seed(...))`` must pass;
    #: a zero-argument construction seeds from OS entropy and stays
    #: banned.
    SEEDED_CONSTRUCTORS = ("Random", "RandomState", "default_rng",
                           "Generator", "SeedSequence")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs(*HOT_PATH_DIRS)

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if (name.split(".")[-1] in self.SEEDED_CONSTRUCTORS
                    and (node.args or any(kw.arg == "seed"
                                          for kw in node.keywords))):
                continue
            if any(name == prefix[:-1] or name.startswith(prefix)
                   for prefix in self.BANNED):
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    f"call to {name}() in a hot-path module; use the "
                    f"tracer clock or a seeded RandomState passed in")


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments anywhere in the tree.

    A ``[]``/``{}``/``set()`` default is evaluated once and shared by
    every call — the classic aliasing bug.
    """

    id = "mutable-default"
    severity = "error"
    description = "function defaults must not be mutable literals"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield module.finding(
                        default.lineno, self.id, self.severity,
                        f"mutable default argument in {node.name}(); "
                        f"use None and create inside the function")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in MutableDefaultRule._MUTABLE_CALLS)


@register
class BareExceptRule(Rule):
    """No bare or silently-swallowing exception handlers.

    The fault-injection work (docs/ROBUSTNESS.md) depends on faults
    surfacing: a bare ``except:`` also catches ``KeyboardInterrupt``
    and ``SystemExit`` (masking the runner's kill path), and an
    ``except Exception: pass`` turns an injected fault into exactly
    the silent corruption the campaign is supposed to rule out.
    Broad handlers are fine when the body does something — re-raise,
    report, degrade — so only pass/continue-only bodies are flagged.
    """

    id = "bare-except"
    severity = "error"
    description = ("no bare except:, and no except Exception whose body "
                   "only passes")

    _BROAD = {"Exception", "BaseException"}

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    "bare except: catches KeyboardInterrupt/SystemExit; "
                    "name the exception type")
            elif self._broad(node.type) and self._swallows(node.body):
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    f"except {dotted_name(node.type)} with a pass-only "
                    f"body silently swallows faults; handle or re-raise")

    @staticmethod
    def _broad(node: ast.AST) -> bool:
        name = dotted_name(node)
        return name in BareExceptRule._BROAD

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        return all(isinstance(stmt, (ast.Pass, ast.Continue))
                   for stmt in body)


@register
class RecoveryTracedRule(Rule):
    """Recovery/degraded-mode paths in core/ emit trace events.

    The fault campaign (``repro.inject.campaign``) reconciles injected
    faults against ``fault_*``/``recovery_*``/``degraded_*`` events;
    a recovery path that never emits would make every fault it handles
    look like a silent corruption.  Any ``core/`` function whose name
    mentions recover/degraded/deny must contain an ``.emit(`` call.
    """

    id = "recovery-traced"
    severity = "error"
    description = ("core/ functions named *recover*/*degraded*/*deny* "
                   "must emit a trace event")

    _NAMES = re.compile(r"recover|degraded|deny")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro/core")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.FunctionDef)
                    and self._NAMES.search(node.name)):
                continue
            emits = any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "emit"
                for inner in ast.walk(node))
            if not emits:
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    f"{node.name}() looks like a recovery path but "
                    f"never emits a trace event (docs/ROBUSTNESS.md)")


@register
class DegradedTransitionTracedRule(Rule):
    """Pressure/degraded state mutations are traced (docs/PRESSURE.md).

    The pressure campaign reconciles every shed/deny/recovery counter
    against the trace with zero silent drops; an untraced assignment
    to the degraded/backpressure state machine would break that
    ledger invisibly.  Any function in ``core/`` or ``pressure/``
    that assigns ``<obj>.degraded_mode``, ``<obj>.degraded_since`` or
    ``<obj>.in_pressure`` must contain an ``.emit(`` call.
    ``__init__`` is exempt: initialising the state machine to its
    resting value is not a transition.
    """

    id = "degraded-transition-traced"
    severity = "error"
    description = ("functions mutating degraded/backpressure state "
                   "must emit a trace event")

    _STATE_ATTRS = ("degraded_mode", "degraded_since", "in_pressure")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro/core", "src/repro/pressure")

    def _mutates_state(self, node: ast.FunctionDef) -> bool:
        for inner in ast.walk(node):
            if not isinstance(inner, (ast.Assign, ast.AugAssign,
                                      ast.AnnAssign)):
                continue
            targets = (inner.targets if isinstance(inner, ast.Assign)
                       else [inner.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr in self._STATE_ATTRS):
                    return True
        return False

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name == "__init__":
                continue
            if not self._mutates_state(node):
                continue
            emits = any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "emit"
                for inner in ast.walk(node))
            if not emits:
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    f"{node.name}() mutates degraded/backpressure state "
                    f"without emitting a trace event (docs/PRESSURE.md)")


@register
class StatsFieldExistsRule(Rule):
    """``stats.<attr>`` references in obs/analysis name real fields.

    The observability and analysis layers read ``ControllerStats``
    loosely (duck-typed attribute access); a renamed counter would
    otherwise only fail at runtime, possibly deep inside a long run.
    """

    id = "stats-field-exists"
    severity = "error"
    description = ("ControllerStats attributes referenced in obs/ and "
                   "analysis/ must exist on the dataclass")

    _BASES = {"stats", "cstats", "controller_stats"}

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_dirs("src/repro/obs", "src/repro/analysis")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        known = self._known_attrs()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            base = None
            if isinstance(value, ast.Name):
                base = value.id
            elif isinstance(value, ast.Attribute):
                base = value.attr
            if base not in self._BASES:
                continue
            if node.attr not in known:
                yield module.finding(
                    node.lineno, self.id, self.severity,
                    f"ControllerStats has no attribute {node.attr!r}")

    @staticmethod
    def _known_attrs() -> set:
        import dataclasses

        from ..core.stats import ControllerStats
        known = {f.name for f in dataclasses.fields(ControllerStats)}
        known.update(dir(ControllerStats))
        return known


@register
class DocLinksRule(ProjectRule):
    """Relative markdown links in the documented set resolve to files."""

    id = "doc-links"
    severity = "error"
    description = "relative links in README/DESIGN/EXPERIMENTS/docs resolve"

    def check_project(self, root: Path) -> Iterable[Finding]:
        for doc in DOCS:
            path = root / doc
            if not path.exists():
                yield Finding(doc, 0, self.id, self.severity, "file missing")
                continue
            # Fenced code blocks can contain bracket/paren sequences
            # that look like links (table output, comprehensions).
            text = _FENCE.sub(lambda m: "\n" * m.group(0).count("\n"),
                              path.read_text())
            for number, line in enumerate(text.splitlines(), start=1):
                for match in _LINK.finditer(line):
                    target = match.group(1)
                    if target.startswith(_EXTERNAL):
                        continue
                    target = target.split("#", 1)[0]
                    if target and not (path.parent / target).exists():
                        yield Finding(doc, number, self.id, self.severity,
                                      f"broken link -> {target}")


@register
class PackageDocLinkRule(ProjectRule):
    """Every ``src/repro`` package docstring names its docs page.

    Each subsystem has a prose home (DESIGN.md or a ``docs/*.md``
    page); the package ``__init__`` docstring is where a reader lands
    first, so it must point at an *existing* markdown page.  This is
    what keeps the docs from drifting silently when subsystems are
    added or renamed — a new subpackage fails lint until it says where
    it is documented.
    """

    id = "package-doc-link"
    severity = "error"
    description = ("src/repro package __init__ docstrings must name an "
                   "existing documentation page")

    _DOC_REF = re.compile(
        r"docs/[A-Za-z0-9_.-]+\.md"
        r"|\b(?:README|DESIGN|EXPERIMENTS|ROADMAP|PAPER)\.md")

    def check_project(self, root: Path) -> Iterable[Finding]:
        for init in sorted((root / "src" / "repro").rglob("__init__.py")):
            rel = init.relative_to(root).as_posix()
            tree = ast.parse(init.read_text(), filename=rel)
            doc = ast.get_docstring(tree) or ""
            refs = self._DOC_REF.findall(doc)
            if not refs:
                yield Finding(
                    rel, 1, self.id, self.severity,
                    "package docstring names no documentation page "
                    "(mention e.g. DESIGN.md or docs/<PAGE>.md)")
                continue
            for ref in sorted(set(refs)):
                if not (root / ref).exists():
                    yield Finding(
                        rel, 1, self.id, self.severity,
                        f"package docstring names {ref}, which does "
                        f"not exist")


@register
class ConfigKnobDocumentedRule(ProjectRule):
    """Every public config knob is named somewhere in the docs.

    Scans the fields of the classes in :data:`CONFIG_CLASSES` and
    requires each name to appear (as a whole word) in README.md,
    DESIGN.md, EXPERIMENTS.md or docs/*.md — the design reference in
    DESIGN.md keeps the full table.
    """

    id = "config-knob-documented"
    severity = "error"
    description = "public config dataclass fields must appear in the docs"

    def check_project(self, root: Path) -> Iterable[Finding]:
        docs_text = self._docs_text(root)
        for relpath, class_name in CONFIG_CLASSES:
            source = root / relpath
            if not source.exists():
                yield Finding(relpath, 0, self.id, self.severity,
                              f"config module missing ({class_name})")
                continue
            for name, line in self._field_lines(source, class_name):
                if not re.search(rf"\b{re.escape(name)}\b", docs_text):
                    yield Finding(
                        relpath, line, self.id, self.severity,
                        f"{class_name}.{name} is not mentioned in any "
                        f"documentation file")

    @staticmethod
    def _docs_text(root: Path) -> str:
        parts: List[str] = []
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = root / name
            if path.exists():
                parts.append(path.read_text())
        for path in sorted((root / "docs").glob("*.md")):
            parts.append(path.read_text())
        return "\n".join(parts)

    @staticmethod
    def _field_lines(source: Path, class_name: str
                     ) -> List[Tuple[str, int]]:
        """(field name, line) pairs of a dataclass's annotated fields."""
        tree = ast.parse(source.read_text(), filename=str(source))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return [
                    (stmt.target.id, stmt.lineno)
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ]
        return []
