"""Analytic out-of-order core timing model (paper Tab. III).

A 3 GHz, 4-wide OOO core with a 192-entry ROB.  Rather than simulating
the pipeline, we use the standard first-order model for trace-driven
memory studies: non-memory work retires at the issue width, demand
misses stall the core for their latency divided by the workload's
memory-level parallelism (an OOO core overlaps independent misses),
and writebacks are posted (they cost bandwidth, not stalls).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    freq_ghz: float = 3.0
    issue_width: int = 4
    rob_entries: int = 192


@dataclass
class CoreStats:
    instructions: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0

    @property
    def cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class AnalyticCore:
    """Accumulates time for instruction gaps and memory stalls."""

    def __init__(self, config: CoreConfig = CoreConfig(), mlp: float = 2.0,
                 cpi: float = 0.5) -> None:
        if mlp <= 0:
            raise ValueError("memory-level parallelism must be positive")
        self.config = config
        self.mlp = mlp
        # Dependency chains keep real cores well below the issue width;
        # the workload profile supplies its non-memory CPI.
        self.cpi = max(1.0 / config.issue_width, cpi)
        self.stats = CoreStats()
        self.now = 0  # current cycle

    def advance_instructions(self, count: int) -> None:
        """Retire ``count`` non-stalled instructions at the profile's CPI."""
        if count < 0:
            raise ValueError("negative instruction count")
        cycles = max(1, round(count * self.cpi)) if count else 0
        self.now += cycles
        self.stats.instructions += count
        self.stats.compute_cycles += cycles

    def stall(self, latency_cycles: int) -> None:
        """Block on a demand miss; OOO overlap divides by MLP."""
        if latency_cycles < 0:
            raise ValueError("negative stall latency")
        effective = int(round(latency_cycles / self.mlp))
        self.now += effective
        self.stats.stall_cycles += effective

    def seconds(self) -> float:
        return self.now / (self.config.freq_ghz * 1e9)
