"""CPU core timing substrate."""

from .core import AnalyticCore, CoreConfig, CoreStats

__all__ = ["AnalyticCore", "CoreConfig", "CoreStats"]
