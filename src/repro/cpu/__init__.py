"""CPU core timing substrate (DESIGN.md)."""

from .core import AnalyticCore, CoreConfig, CoreStats

__all__ = ["AnalyticCore", "CoreConfig", "CoreStats"]
