"""Kernel micro-benchmarks: the perf trajectory behind docs/KERNELS.md.

``python -m repro.analysis bench`` times every scalar compressor
against its numpy batch kernel (:mod:`repro.compression.vector`) on a
deterministic mixed-class corpus (:mod:`repro.workloads.datagen`),
verifies the two paths produce byte-identical streams, and writes the
measurements to a schema'd JSON file (``BENCH_kernels.json`` by
default) so successive PRs accumulate a comparable throughput history.

The emitted document follows the ``repro-bench-kernels/1`` schema
(docs/KERNELS.md).  To keep the trajectory honest, an existing output
file acts as the baseline: the CLI refuses to overwrite it when any
algorithm's vector throughput regressed by more than
:data:`REGRESSION_TOLERANCE` unless ``--force`` is given.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.vector.batch import (
    BatchCompressor,
    vectorized_algorithms,
)
from ..workloads.datagen import LINE_SIZE, LineClass, make_line

#: Document schema identifier (docs/KERNELS.md).
BENCH_SCHEMA = "repro-bench-kernels/1"

#: Fractional vector-throughput drop vs. the existing output file that
#: makes the CLI refuse to overwrite it (without ``--force``).
REGRESSION_TOLERANCE = 0.20

DEFAULT_OUT = "BENCH_kernels.json"
DEFAULT_LINES = 4000
DEFAULT_REPEAT = 3
QUICK_LINES = 400


def make_corpus(n_lines: int, seed: int = 0) -> List[bytes]:
    """Deterministic mixed-class corpus cycling through every
    :class:`~repro.workloads.datagen.LineClass` (so each algorithm sees
    its best and worst cases in one run)."""
    rng = np.random.RandomState(seed)
    classes = list(LineClass)
    return [make_line(classes[i % len(classes)], rng)
            for i in range(n_lines)]


def _checksum(lines) -> str:
    """Stable digest of a compressed-line sequence (payloads included)."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(
            f"{line.algorithm}|{line.size_bits}|"
            f"{line.payload.length}|{line.payload.value:x}\n".encode())
    return digest.hexdigest()


def _best_of(repeat: int, fn) -> float:
    """Minimum wall-clock of ``repeat`` calls (discards scheduler noise)."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_algorithm(algorithm: str, corpus: Sequence[bytes],
                    repeat: int = DEFAULT_REPEAT) -> Dict[str, object]:
    """Measure one algorithm; returns its ``algorithms`` entry.

    Times three paths — the scalar reference loop, the vector
    ``batch_compress`` (full payloads) and the vector
    ``batch_size_bits`` (sizes only, what the simulator's cache priming
    uses) — and cross-checks the scalar and vector streams.
    """
    batch = BatchCompressor(algorithm, LINE_SIZE)
    scalar = batch._scalar
    n = len(corpus)

    scalar_s = _best_of(repeat, lambda: [scalar.compress(line)
                                         for line in corpus])
    vector_s = _best_of(repeat, lambda: batch.batch_compress(corpus))
    sizes_s = _best_of(repeat, lambda: batch.batch_size_bits(corpus))

    scalar_out = [scalar.compress(line) for line in corpus]
    vector_out = batch.batch_compress(corpus)
    checksum = _checksum(scalar_out)
    match = checksum == _checksum(vector_out)

    return {
        "vectorized": batch.vectorized,
        "scalar_lines_per_s": n / scalar_s,
        "vector_lines_per_s": n / vector_s,
        "sizes_lines_per_s": n / sizes_s,
        "speedup": scalar_s / vector_s,
        "sizes_speedup": scalar_s / sizes_s,
        "checksum": checksum,
        "match": match,
    }


def run_bench(algorithms: Optional[Sequence[str]] = None,
              n_lines: int = DEFAULT_LINES, repeat: int = DEFAULT_REPEAT,
              seed: int = 0) -> Dict[str, object]:
    """Run the full micro-benchmark; returns the schema'd document."""
    names = list(algorithms) if algorithms else vectorized_algorithms()
    corpus = make_corpus(n_lines, seed)
    results = {name: bench_algorithm(name, corpus, repeat)
               for name in names}
    return {
        "schema": BENCH_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "line_size": LINE_SIZE,
        "lines": n_lines,
        "repeat": repeat,
        "seed": seed,
        "algorithms": results,
    }


def validate_document(doc) -> List[str]:
    """Schema problems for one bench document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is not an object: {type(doc).__name__}"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {BENCH_SCHEMA!r}")
    for name, types in (("generated", str), ("python", str), ("numpy", str),
                        ("line_size", int), ("lines", int), ("repeat", int),
                        ("seed", int), ("algorithms", dict)):
        if not isinstance(doc.get(name), types):
            problems.append(f"field {name!r} missing or mistyped")
    for alg, entry in (doc.get("algorithms") or {}).items():
        if not isinstance(entry, dict):
            problems.append(f"algorithms[{alg!r}] is not an object")
            continue
        for name, types in (
            ("vectorized", bool),
            ("scalar_lines_per_s", (int, float)),
            ("vector_lines_per_s", (int, float)),
            ("sizes_lines_per_s", (int, float)),
            ("speedup", (int, float)),
            ("sizes_speedup", (int, float)),
            ("checksum", str),
            ("match", bool),
        ):
            if not isinstance(entry.get(name), types):
                problems.append(
                    f"algorithms[{alg!r}].{name} missing or mistyped")
    return problems


def find_regressions(old: Dict[str, object],
                     new: Dict[str, object],
                     tolerance: float = REGRESSION_TOLERANCE
                     ) -> List[str]:
    """Per-algorithm throughput drops beyond ``tolerance`` vs. a
    previous document (human-readable, empty = no regression)."""
    regressions: List[str] = []
    old_algorithms = old.get("algorithms") or {}

    def usable(value) -> bool:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool) and value > 0)

    for alg, entry in (new.get("algorithms") or {}).items():
        previous = old_algorithms.get(alg)
        if not isinstance(previous, dict):
            # Algorithm absent from the baseline: nothing to gate
            # against (a newly added kernel, not a regression).
            continue
        before = previous.get("vector_lines_per_s")
        after = entry.get("vector_lines_per_s")
        if not usable(before):
            # A zero/absent baseline would make every future run pass
            # (or divide by zero) — that is a broken gate, not a pass.
            regressions.append(
                f"{alg}: recorded baseline vector_lines_per_s is "
                f"{before!r} (unusable); re-record the baseline with "
                f"'bench --save' instead of gating against it")
            continue
        if not usable(after):
            regressions.append(
                f"{alg}: current vector_lines_per_s is {after!r} "
                f"(unusable); benchmark did not produce a throughput")
            continue
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{alg}: vector throughput {after:,.0f} lines/s is "
                f"{(1 - after / before) * 100:.0f}% below the recorded "
                f"{before:,.0f} lines/s")
    return regressions


def render_table(doc: Dict[str, object]) -> str:
    """The human-readable report row per algorithm."""
    rows = [f"== kernel bench: {doc['lines']} lines x {doc['repeat']} "
            f"repeats (seed {doc['seed']}) ==",
            f"{'algorithm':20s} {'scalar l/s':>12s} {'vector l/s':>12s} "
            f"{'speedup':>8s} {'sizes l/s':>12s} {'sizes x':>8s}  match"]
    for alg in sorted(doc["algorithms"]):
        entry = doc["algorithms"][alg]
        rows.append(
            f"{alg:20s} {entry['scalar_lines_per_s']:12,.0f} "
            f"{entry['vector_lines_per_s']:12,.0f} "
            f"{entry['speedup']:7.1f}x "
            f"{entry['sizes_lines_per_s']:12,.0f} "
            f"{entry['sizes_speedup']:7.1f}x  "
            f"{'yes' if entry['match'] else 'NO'}")
    return "\n".join(rows)


def _load_baseline(path: Path) -> Optional[Dict[str, object]]:
    """A previous output file, if present and schema-valid."""
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if validate_document(doc):
        return None
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis bench",
        description="Micro-benchmark the vector compression kernels "
                    "against the scalar reference (docs/KERNELS.md).",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH",
                        help=f"output JSON path (default: {DEFAULT_OUT}); "
                             "an existing file is the regression baseline")
    parser.add_argument("--lines", type=int, default=DEFAULT_LINES,
                        metavar="N",
                        help=f"corpus size (default: {DEFAULT_LINES})")
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT,
                        metavar="R",
                        help="timing repetitions, minimum kept "
                             f"(default: {DEFAULT_REPEAT})")
    parser.add_argument("--quick", action="store_true",
                        help=f"small corpus ({QUICK_LINES} lines), one "
                             "repetition — the tier-1 smoke configuration")
    parser.add_argument("--algorithms", default=None, metavar="A[,A...]",
                        help="benchmark only these algorithms "
                             f"(default: {','.join(vectorized_algorithms())})")
    parser.add_argument("--seed", type=int, default=0,
                        help="corpus seed (default: 0)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite --out even when throughput "
                             "regressed beyond "
                             f"{REGRESSION_TOLERANCE:.0%}")
    parser.add_argument("--journal", default="runs.jsonl", metavar="PATH",
                        help="append a 'bench' event to this run journal "
                             "(default: runs.jsonl)")
    parser.add_argument("--no-journal", dest="journal",
                        action="store_const", const="",
                        help="disable the run journal")
    args = parser.parse_args(argv)
    if args.lines <= 0:
        parser.error("--lines must be positive")

    algorithms = None
    if args.algorithms:
        algorithms = [name.strip() for name in args.algorithms.split(",")
                      if name.strip()]
        unknown = sorted(set(algorithms) - set(vectorized_algorithms()))
        if unknown:
            parser.error(f"unknown algorithm(s) {unknown}; "
                         f"known: {vectorized_algorithms()}")
    n_lines = QUICK_LINES if args.quick else args.lines
    repeat = 1 if args.quick else args.repeat

    doc = run_bench(algorithms, n_lines=n_lines, repeat=repeat,
                    seed=args.seed)
    print(render_table(doc))

    mismatches = sorted(alg for alg, entry in doc["algorithms"].items()
                        if not entry["match"])
    if mismatches:
        print(f"ERROR: vector output diverged from the scalar reference "
              f"for {mismatches}; not writing {args.out}")
        return 2

    out = Path(args.out)
    baseline = _load_baseline(out)
    if baseline is not None:
        regressions = find_regressions(baseline, doc)
        if regressions and not args.force:
            print(f"REFUSING to overwrite {out} "
                  f"(recorded {baseline.get('generated')}):")
            for line in regressions:
                print(f"  {line}")
            print("rerun with --force to record the regression anyway")
            return 3
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"bench results written to {out}")

    if args.journal:
        from ..runner import RunJournal
        best = max(entry["speedup"]
                   for entry in doc["algorithms"].values())
        RunJournal(args.journal).event(
            "bench", out=str(out), lines=n_lines,
            algorithms=sorted(doc["algorithms"]),
            best_speedup=round(float(best), 2),
            match=all(entry["match"]
                      for entry in doc["algorithms"].values()))
    return 0


__all__ = [
    "BENCH_SCHEMA",
    "REGRESSION_TOLERANCE",
    "bench_algorithm",
    "find_regressions",
    "main",
    "make_corpus",
    "render_table",
    "run_bench",
    "validate_document",
]
