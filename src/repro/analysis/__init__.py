"""Experiment harness: one runner per paper table/figure + rendering.

The CLI surface (``run``/``trace``/``lint``/``bench`` subcommands) is
documented in docs/RUNNER.md; the shipped numbers live in
EXPERIMENTS.md.
"""

from .experiments import (
    COMPRESSED_SYSTEMS,
    DEFAULT,
    FULL,
    QUICK,
    ExperimentScale,
    run_ablation_design_space,
    run_fig2,
    run_fig4,
    run_fig6,
    run_fig7,
    run_faults,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_pressure,
    run_sec7_energy_area,
    run_tab2,
)
from .export import to_csv, to_json, write_result, write_results
from .report import ExperimentResult, arithmetic_mean, geometric_mean, render

__all__ = [
    "COMPRESSED_SYSTEMS",
    "DEFAULT",
    "ExperimentResult",
    "ExperimentScale",
    "FULL",
    "QUICK",
    "arithmetic_mean",
    "geometric_mean",
    "render",
    "to_csv",
    "to_json",
    "write_result",
    "write_results",
    "run_ablation_design_space",
    "run_faults",
    "run_fig2",
    "run_fig4",
    "run_fig6",
    "run_fig7",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_pressure",
    "run_sec7_energy_area",
    "run_tab2",
]
