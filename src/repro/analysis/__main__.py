"""Command-line experiment runner.

Three forms.  The ``run`` subcommand is the documented interface
(docs/RUNNER.md): parallel execution, content-addressed result caching
under ``.repro_cache/``, and a ``runs.jsonl`` run journal::

    python -m repro.analysis run --jobs 4 --scale quick
    python -m repro.analysis run --filter fig10 --filter tab2
    python -m repro.analysis run --no-cache --jobs 1 --scale default
    python -m repro.analysis run --filter fig4 --trace-window 1000
    python -m repro.analysis run --filter fig4 --sanitize

Robustness knobs (docs/ROBUSTNESS.md): ``--inject`` runs every
cycle-based unit under fault injection (pairing it with
``--sanitize recover`` unless another mode was chosen), ``--timeout``
and ``--retries`` make the sweep crash/hang-tolerant, and ``--resume``
reports what an interrupted run left unfinished before recomputing
exactly those cells (finished cells come from the cache)::

    python -m repro.analysis run --filter faults --scale quick
    python -m repro.analysis run --inject line:0.01,meta:0.005
    python -m repro.analysis run --jobs 4 --timeout 300 --retries 2
    python -m repro.analysis run --resume

The ``trace`` subcommand (docs/OBSERVABILITY.md) runs one traced
simulation per matching benchmark and exports the event stream::

    python -m repro.analysis trace --filter gcc --out trace.json
    python -m repro.analysis trace --filter mcf --window 500 --csv tl.csv

The ``lint`` subcommand (docs/LINTING.md) runs the reprolint static
checks over the tree and exits nonzero on any error finding::

    python -m repro.analysis lint
    python -m repro.analysis lint --jobs 4
    python -m repro.analysis lint --rules stats-emit,emit-registered

The ``bench`` subcommand (docs/KERNELS.md) micro-benchmarks the numpy
batch kernels against the scalar compressors, verifies byte equality,
and records the throughput trajectory in ``BENCH_kernels.json``::

    python -m repro.analysis bench
    python -m repro.analysis bench --quick --no-journal
    python -m repro.analysis bench --algorithms bdi,bpc --force

The ``index`` and ``compare`` subcommands (docs/RESULTS.md) maintain
the cross-run SQLite results index and the statistical regression
gate over it::

    python -m repro.analysis index
    python -m repro.analysis index --runs
    python -m repro.analysis compare RUN_A RUN_B
    python -m repro.analysis run --seeds 5 --filter fig4

The legacy positional form still works and behaves exactly as before
(serial, no cache, no journal)::

    python -m repro.analysis fig2 fig9 --scale quick
    python -m repro.analysis all --scale default

Results render as the same rows/series the paper reports, with the
paper's stated reference values attached.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

from . import (
    DEFAULT,
    FULL,
    QUICK,
    render,
    run_ablation_design_space,
    run_faults,
    run_fig2,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_pressure,
    run_sec7_energy_area,
    run_tab2,
)
from ..runner import ResultCache, RunJournal, Runner, timing_table

RUNNERS = {
    "fig2": run_fig2,
    "fig4": run_fig4,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "tab2": run_tab2,
    "ablation": run_ablation_design_space,
    "sec7": run_sec7_energy_area,
    "faults": run_faults,
    "pressure": run_pressure,
}

#: ``--sanitize`` argument -> ExperimentScale.sanitize value.
_SANITIZE_MODES = {"on": True, "strict": "strict", "recover": "recover"}

SCALES = {"quick": QUICK, "default": DEFAULT, "full": FULL}


def _invoke(name: str, scale, runner: Runner):
    """Call one experiment runner (sec7 is analytic and takes no scale)."""
    fn = RUNNERS[name]
    if name == "sec7":
        return fn(runner=runner)
    return fn(scale, runner=runner)


def _run_command(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis run",
        description="Parallel, cached, journaled experiment regeneration.",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = deterministic serial "
                             "path, default)")
    parser.add_argument("--cache", dest="cache",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="reuse/populate the content-addressed result "
                             "cache (default: on)")
    parser.add_argument("--cache-dir", default=".repro_cache",
                        help="cache directory (default: .repro_cache)")
    parser.add_argument("--journal", default="runs.jsonl", metavar="PATH",
                        help="run-journal JSONL path (default: runs.jsonl)")
    parser.add_argument("--no-journal", dest="journal",
                        action="store_const", const="",
                        help="disable the run journal")
    parser.add_argument("--filter", action="append", default=[],
                        metavar="PATTERN",
                        help="only experiments whose id contains PATTERN "
                             "(repeatable; default: all)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="problem size (default: quick)")
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run every experiment N times with seeds "
                             "base_seed..base_seed+N-1 and journal the "
                             "seed per unit, so the results index can "
                             "test metric differences for significance "
                             "(docs/RESULTS.md; default: 1)")
    parser.add_argument("--trace-window", type=int, default=None, metavar="N",
                        help="trace cycle-based units and journal a "
                             "timeline digest with N-access windows "
                             "(default: tracing off)")
    parser.add_argument("--sanitize", nargs="?", const="on", default=None,
                        choices=sorted(_SANITIZE_MODES), metavar="MODE",
                        help="attach the memory-model sanitizer "
                             "(docs/LINTING.md) to cycle-based units and "
                             "journal the invariant-violation counts; "
                             "MODE is 'on' (default), 'strict' (raise on "
                             "the first violation) or 'recover' (repair "
                             "detected corruption, docs/ROBUSTNESS.md)")
    parser.add_argument("--inject", default=None, metavar="SPEC",
                        help="fault-injection spec for cycle-based units "
                             "(site:rate[:burst], comma-separated; see "
                             "docs/ROBUSTNESS.md); implies "
                             "--sanitize recover unless a mode was given")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run multicore units across N supervised "
                             "worker processes with heartbeats and "
                             "deterministic replay (docs/SHARDING.md); "
                             "results are byte-identical to the "
                             "single-process path (default: 0 = off)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any unit running longer than "
                             "this (default: no timeout)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry crashed/hung/raising units up to N "
                             "times with exponential backoff (default: 0)")
    parser.add_argument("--resume", action="store_true",
                        help="report what an interrupted previous run left "
                             "unfinished (from the journal), then rerun; "
                             "cached cells are not recomputed")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    if args.shards < 0:
        parser.error("--shards must be non-negative")
    if args.shards and (args.sanitize or args.inject):
        parser.error("--shards is incompatible with --sanitize/--inject "
                     "(docs/SHARDING.md)")
    if args.shards and args.timeout:
        parser.error("--shards is incompatible with --timeout: killing a "
                     "supervisor unit would orphan its shard workers; the "
                     "supervisor runs its own heartbeat watchdog "
                     "(docs/SHARDING.md)")
    if args.inject:
        from ..inject import parse_fault_spec
        try:
            parse_fault_spec(args.inject)
        except ValueError as exc:
            parser.error(str(exc))

    names = list(RUNNERS)
    if args.filter:
        names = [name for name in names
                 if any(pattern in name for pattern in args.filter)]
    if not names:
        parser.error(f"no experiment matches {args.filter}; "
                     f"known: {sorted(RUNNERS)}")

    if args.resume:
        if not args.journal:
            parser.error("--resume needs the run journal (drop --no-journal)")
        from ..runner import find_interrupted
        interrupted = find_interrupted(args.journal)
        if interrupted["runs"] or interrupted["units"]:
            print(f"resume: {len(interrupted['runs'])} interrupted run(s) "
                  f"in {args.journal}")
            for record in interrupted["units"]:
                print(f"resume: unit {record['unit']!r} "
                      f"({record['experiment']}) never finished; "
                      "will recompute")
        else:
            print(f"resume: no interrupted runs in {args.journal}")

    cache = ResultCache(args.cache_dir) if args.cache else None
    journal = RunJournal(args.journal) if args.journal else None
    runner = Runner(jobs=args.jobs, cache=cache, journal=journal,
                    progress=True, timeout=args.timeout,
                    retries=args.retries,
                    strict=not (args.timeout or args.retries),
                    allow_children=bool(args.shards))
    scale = SCALES[args.scale]
    if args.trace_window:
        scale = dataclasses.replace(scale, trace_window=args.trace_window)
    sanitize = args.sanitize
    if args.inject and sanitize is None:
        sanitize = "recover"
    if sanitize:
        scale = dataclasses.replace(scale,
                                    sanitize=_SANITIZE_MODES[sanitize])
    if args.inject:
        scale = dataclasses.replace(scale, faults=args.inject)
    if args.shards:
        scale = dataclasses.replace(scale, shards=args.shards)
    started = time.time()
    if journal is not None:
        # reprolint: disable=determinism-taint -- wall-clock duration is journaled as provenance, never as a result
        journal.event("run_start", jobs=runner.jobs,
                      cache_enabled=cache is not None,
                      experiments=names, scale=args.scale,
                      sanitize=sanitize, seeds=args.seeds,
                      base_seed=scale.seed)
    for offset in range(args.seeds):
        seed_scale = (scale if offset == 0
                      else dataclasses.replace(scale,
                                               seed=scale.seed + offset))
        if args.seeds > 1:
            print(f"--- seed {seed_scale.seed} "
                  f"({offset + 1}/{args.seeds}) ---")
        for name in names:
            result = _invoke(name, seed_scale, runner)
            print(render(result))
            print()
    if journal is not None:
        journal.event("run_end", wall_s=time.time() - started,
                      units=len(runner.records),
                      cache_hits=runner.cache_hits)
    print(timing_table(runner.records))
    return 0


def _trace_command(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis trace",
        description="Run traced simulations and export the event stream "
                    "(docs/OBSERVABILITY.md).",
    )
    parser.add_argument("--filter", action="append", default=[],
                        metavar="PATTERN",
                        help="only benchmarks whose name contains PATTERN "
                             "(repeatable; default: gcc)")
    parser.add_argument("--system", default="compresso",
                        help="system configuration to trace "
                             "(default: compresso)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="problem size (default: quick)")
    parser.add_argument("--window", type=int, default=1000, metavar="N",
                        help="timeline window in demand accesses "
                             "(default: 1000)")
    parser.add_argument("--events", type=int, default=None, metavar="N",
                        help="simulate N trace events (overrides the "
                             "scale preset)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write Chrome trace-event JSON here "
                             "(load in Perfetto / chrome://tracing)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="write the windowed timeline as CSV here")
    args = parser.parse_args(argv)
    if args.window <= 0:
        parser.error("--window must be positive")

    from ..obs import (
        Tracer,
        build_timeline,
        summary,
        timeline_csv,
        write_chrome_trace,
    )
    from ..simulation.simulator import simulate
    from ..workloads.profiles import PROFILES

    patterns = args.filter or ["gcc"]
    names = [name for name in PROFILES
             if any(pattern in name for pattern in patterns)]
    if not names:
        parser.error(f"no benchmark matches {patterns}; "
                     f"known: {sorted(PROFILES)}")

    scale = SCALES[args.scale]
    sim = scale.sim(**({"n_events": args.events} if args.events else {}))

    def _suffixed(path: str, name: str) -> Path:
        base = Path(path)
        if len(names) == 1:
            return base
        return base.with_name(f"{base.stem}.{name}{base.suffix}")

    for name in names:
        tracer = Tracer(digest_window=args.window)
        result = simulate(PROFILES[name], args.system, sim, tracer=tracer)
        stats = result.controller_stats
        print(f"== trace: {name} / {args.system} ==")
        print(summary(tracer, stats=stats, window=args.window))
        if args.out:
            path = _suffixed(args.out, name)
            write_chrome_trace(tracer, path, window=args.window)
            print(f"chrome trace written to {path}")
        if args.csv:
            path = _suffixed(args.csv, name)
            windows = build_timeline(tracer.events, args.window,
                                     end_clock=tracer.clock)
            Path(path).write_text(timeline_csv(windows))
            print(f"timeline CSV written to {path}")
        print()
    return 0


def _lint_command(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis lint",
        description="AST-based invariant lint over the tree "
                    "(docs/LINTING.md).",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files in N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program flow rules "
                             "(docs/FLOWCHECK.md)")
    parser.add_argument("--sarif", default=None, metavar="PATH",
                        help="write findings as SARIF-lite JSON to PATH")
    parser.add_argument("--dump-callgraph", default=None, metavar="PATH",
                        nargs="?", const="callgraph.json",
                        help="with --deep: dump the resolved call graph "
                             "as JSON (default: callgraph.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="with --deep: grandfather every current "
                             "flow finding into .reprolint-baseline.json")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files to lint (default: src/repro + scripts)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    from ..check import all_rules, run_lint, to_sarif

    if args.list_rules:
        for rule in all_rules():
            scope = rule.scope
            print(f"{rule.id:24s} {rule.severity:8s} {scope:8s} "
                  f"{rule.description}")
        return 0

    rules = None
    if args.rules:
        rules = [rule_id.strip() for rule_id in args.rules.split(",")
                 if rule_id.strip()]
    files = [Path(p) for p in args.paths] or None
    deep = args.deep or args.write_baseline
    dump = Path(args.dump_callgraph) if args.dump_callgraph else None

    if args.write_baseline:
        from ..check import write_baseline
        from ..check.driver import repo_root
        from ..check.flow import flow_rule_ids
        report = run_lint(files=files, rules=rules, jobs=args.jobs,
                          deep=True, use_baseline=False)
        flow_ids = set(flow_rule_ids())
        grandfathered = [f for f in report.findings
                         if f.rule in flow_ids and f.severity == "error"]
        path = repo_root() / ".reprolint-baseline.json"
        write_baseline(path, grandfathered)
        print(f"baseline: {len(grandfathered)} finding(s) -> {path}")
        return 0

    report = run_lint(files=files, rules=rules, jobs=args.jobs,
                      deep=deep, dump_callgraph=dump)
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(report.findings), indent=2) + "\n")
    print(report.render())
    return report.exit_code


def _legacy_command(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate Compresso paper tables/figures "
                    "(see also the 'run' subcommand).",
    )
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(RUNNERS)}) or 'all'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="problem size (default: quick)")
    args = parser.parse_args(argv)

    names = list(RUNNERS) if "all" in args.experiments else args.experiments
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"known: {sorted(RUNNERS)}")
    scale = SCALES[args.scale]

    runner = Runner()     # serial, uncached, unjournaled: historical path
    for name in names:
        started = time.time()
        result = _invoke(name, scale, runner)
        print(render(result))
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


# reprolint: disable=determinism-taint -- elapsed wall-clock is printed to the console only; campaign stats run on the simulated clock
def _pressure_command(argv) -> int:
    """Run the overload campaign directly and assert its headline claims."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis pressure",
        description="Multi-tenant overload campaign: admission control, "
                    "degradation ladder, recovery drills "
                    "(docs/PRESSURE.md).",
    )
    parser.add_argument("--spec", action="append", default=[],
                        metavar="SPEC",
                        help="campaign cell spec scenario:intensity"
                             "[:tenants] (repeatable; default: the full "
                             "scenario x intensity sweep)")
    parser.add_argument("--allocation", choices=("chunks", "variable",
                                                 "both"),
                        default="both",
                        help="allocation scheme(s) to sweep "
                             "(default: both)")
    parser.add_argument("--steps", type=int, default=160, metavar="N",
                        help="driver steps per cell (default: 160)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero unless every resilience claim "
                             "holds (zero escaped OOM, zero unreconciled, "
                             "every cell recovered)")
    args = parser.parse_args(argv)
    if args.steps < 2:
        parser.error("--steps must be at least 2")

    from ..pressure import (PressureCampaign, parse_pressure_spec,
                            pressure_cell)
    allocations = (("chunks", "variable") if args.allocation == "both"
                   else (args.allocation,))
    started = time.time()
    if args.spec:
        cells = []
        for spec in args.spec:
            try:
                scenario, intensity, tenants = parse_pressure_spec(spec)
            except ValueError as exc:
                parser.error(str(exc))
            for allocation in allocations:
                cells.append(pressure_cell(
                    scenario, intensity, allocation=allocation,
                    seed=args.seed, n_tenants=tenants,
                    n_steps=args.steps))
        oom_escaped = sum(cell.oom_escaped for cell in cells)
        unreconciled = sum(len(cell.unreconciled) for cell in cells)
        all_recovered = all(cell.recovered for cell in cells)
    else:
        campaign = PressureCampaign(allocations=allocations,
                                    seed=args.seed, n_steps=args.steps)
        cells = campaign.run()
        oom_escaped = campaign.oom_escaped
        unreconciled = campaign.unreconciled
        all_recovered = campaign.all_recovered

    from .report import ExperimentResult
    result = ExperimentResult(
        experiment_id="pressure",
        title="Pressure campaign: multi-tenant overload control and "
              "recovery",
        columns=["scenario", "intensity", "allocation", "requests",
                 "throttled", "shed", "denied", "oom_absorbed",
                 "page_outs", "escalations", "degraded_enters",
                 "degraded_exits", "oom_escaped", "recovered",
                 "unreconciled", "jain_fairness", "stall_p95",
                 "stall_p99"],
    )
    for cell in cells:
        row = cell.as_row()
        row.pop("admitted", None)
        result.add_row(**row)
    print(render(result))
    for cell in cells:
        for problem in cell.unreconciled:
            print(f"UNRECONCILED {cell.scenario}@{cell.intensity}/"
                  f"{cell.allocation}: {problem}")
    print(f"cells: {len(cells)}  oom_escaped: {oom_escaped}  "
          f"unreconciled: {unreconciled}  "
          f"all_recovered: {all_recovered}  "
          f"[{time.time() - started:.1f}s]")
    ok = oom_escaped == 0 and unreconciled == 0 and all_recovered
    if args.strict and not ok:
        return 1
    return 0


def _chaos_command(argv) -> int:
    """Run the process-kill chaos campaign and assert its claims."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis chaos",
        description="Process-level chaos campaign over the supervised "
                    "sharded simulation: SIGKILL workers, stall "
                    "heartbeats, drop/dup/reorder/poison messages.  "
                    "Every committed fault must reconcile to a shard_* "
                    "trace event and every merged result must stay "
                    "byte-identical to the unchaosed run "
                    "(docs/SHARDING.md).",
    )
    parser.add_argument("--shards", default="2,4,8", metavar="LIST",
                        help="comma-separated shard counts to sweep "
                             "(default: 2,4,8)")
    parser.add_argument("--kill-rates", default="0.05,0.2", metavar="LIST",
                        help="comma-separated per-segment kill "
                             "probabilities (default: 0.05,0.2)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="message-path chaos mixed into every cell "
                             "(site:rate[:burst], comma-separated; "
                             "default: drops, dups, reorders and poison "
                             "at modest rates; empty string disables)")
    parser.add_argument("--events", type=int, default=600, metavar="N",
                        help="trace events per benchmark per cell "
                             "(default: 600)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--quick", action="store_true",
                        help="single small cell (2 shards, highest kill "
                             "rate) — the CI smoke")
    parser.add_argument("--journal", default="runs.jsonl", metavar="PATH",
                        help="run-journal JSONL path (default: "
                             "runs.jsonl)")
    parser.add_argument("--no-journal", dest="journal",
                        action="store_const", const="",
                        help="disable the run journal")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero unless every claim holds "
                             "(zero silent faults, zero divergent cells, "
                             "no cell errors)")
    args = parser.parse_args(argv)

    from ..shard import ChaosCampaign
    from ..shard.chaos import DEFAULT_MESSAGE_CHAOS, parse_chaos_spec
    try:
        shard_counts = [int(part) for part in args.shards.split(",") if part]
        kill_rates = [float(part) for part in args.kill_rates.split(",")
                      if part]
    except ValueError:
        parser.error("--shards and --kill-rates take comma-separated "
                     "numbers")
    if not shard_counts or any(count < 1 for count in shard_counts):
        parser.error("--shards needs at least one positive count")
    if not kill_rates:
        parser.error("--kill-rates needs at least one rate")
    message_spec = (DEFAULT_MESSAGE_CHAOS if args.chaos is None
                    else args.chaos)
    if message_spec:
        try:
            parse_chaos_spec(message_spec)
        except ValueError as exc:
            parser.error(str(exc))
    if args.quick:
        shard_counts = shard_counts[:1]
        kill_rates = [max(kill_rates)]

    started = time.time()
    campaign = ChaosCampaign(shard_counts=shard_counts,
                             kill_rates=kill_rates,
                             message_spec=message_spec, seed=args.seed,
                             n_events=args.events)
    cells = campaign.run()

    from .report import ExperimentResult
    result = ExperimentResult(
        experiment_id="chaos",
        title="Chaos campaign: supervised shards under kill/stall/"
              "message faults",
        columns=["shards", "kill_rate", "injected", "detected",
                 "recovered", "masked", "silent", "divergent",
                 "respawns", "error"],
    )
    for cell in cells:
        result.add_row(**cell.as_row())
    print(render(result))
    injected = sum(cell.injected for cell in cells)
    print(f"cells: {len(cells)}  injected: {injected}  "
          f"silent: {campaign.silent_faults}  "
          f"divergent: {campaign.divergent_cells}  "
          f"clean: {campaign.clean}  [{time.time() - started:.1f}s]")
    if args.journal:
        # reprolint: disable=determinism-taint -- elapsed wall-clock is printed to the console only; chaos reconciliation runs on the supervisor trace
        RunJournal(args.journal).event(
            "chaos", cells=len(cells), injected=injected,
            silent=campaign.silent_faults,
            divergent=campaign.divergent_cells, clean=campaign.clean)
    if args.strict and not campaign.clean:
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _run_command(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_command(argv[1:])
    if argv and argv[0] == "bench":
        from .bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "pressure":
        return _pressure_command(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_command(argv[1:])
    if argv and argv[0] == "index":
        from ..results.cli import index_main
        return index_main(argv[1:])
    if argv and argv[0] == "compare":
        from ..results.cli import compare_main
        return compare_main(argv[1:])
    return _legacy_command(argv)


if __name__ == "__main__":
    sys.exit(main())
