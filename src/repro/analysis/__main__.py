"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.analysis fig2 fig9 --scale quick
    python -m repro.analysis all --scale default

Results render as the same rows/series the paper reports, with the
paper's stated reference values attached.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    DEFAULT,
    FULL,
    QUICK,
    render,
    run_ablation_design_space,
    run_fig2,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_sec7_energy_area,
    run_tab2,
)

RUNNERS = {
    "fig2": run_fig2,
    "fig4": run_fig4,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "tab2": run_tab2,
    "ablation": run_ablation_design_space,
    "sec7": run_sec7_energy_area,
}

SCALES = {"quick": QUICK, "default": DEFAULT, "full": FULL}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate Compresso paper tables/figures.",
    )
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(RUNNERS)}) or 'all'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick",
                        help="problem size (default: quick)")
    args = parser.parse_args(argv)

    names = list(RUNNERS) if "all" in args.experiments else args.experiments
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"known: {sorted(RUNNERS)}")
    scale = SCALES[args.scale]

    for name in names:
        runner = RUNNERS[name]
        started = time.time()
        # sec7 is purely analytic and takes no scale.
        result = runner() if name == "sec7" else runner(scale)
        print(render(result))
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
