"""Experiment runners: one function per paper table/figure.

Each ``run_*`` function regenerates the corresponding artifact of the
paper's evaluation over the synthetic workload suite and returns an
:class:`~repro.analysis.report.ExperimentResult` carrying the same
rows/series the paper plots, the paper's stated reference values, and
notes about substitutions.  ``benchmarks/`` wraps these runners with
pytest-benchmark; EXPERIMENTS.md records paper-vs-measured.

All runners accept an :class:`ExperimentScale`; the defaults trade
precision for wall-clock so the full harness finishes in minutes on a
laptop.  ``FULL`` sharpens the statistics.

Execution is decomposed into independent per-(benchmark, system,
config) **work units** — module-level ``_unit_*`` functions returning
plain JSON data — submitted through :class:`repro.runner.Runner`.
Every ``run_*`` accepts an optional ``runner``; the default is a
serial, uncached, unjournaled runner that reproduces the historical
behaviour exactly.  Pass ``Runner(jobs=N, cache=..., journal=...)``
(or use ``python -m repro.analysis run``) for parallel, memoized,
observable execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..compression import BDICompressor, BPCCompressor, is_zero_line
from ..core.config import (
    ALIGNMENT_FRIENDLY_LINE_BINS,
    EIGHT_LINE_BINS,
    PRIOR_WORK_LINE_BINS,
    compresso_config,
)
from ..core.lcp import LCPPack
from ..core.linepack import LinePack, split_access_fraction
from ..core.stats import ControllerStats
from ..energy.area import AdderModel, AreaReport, offset_adder_for_bins
from ..energy.model import EnergyConstants, EnergyModel
from ..obs import Tracer
from ..runner import Runner, WorkUnit
from ..simulation.capacity import (
    CapacityConfig,
    capacity_impact,
    multicore_capacity_impact,
)
from ..simulation.compresspoints import (
    profile_intervals,
    representativeness_error,
    select_points,
)
from ..simulation.configs import chunk_vs_variable_configs, optimization_ladder
from ..simulation.multicore import simulate_multicore
from ..simulation.simulator import SimulationConfig, simulate
from ..workloads.mixes import MIX_ORDER, mix_profiles
from ..workloads.profiles import BENCHMARK_ORDER, CAPACITY_STALLERS, PROFILES
from ..workloads.tracegen import Workload
from .report import ExperimentResult, arithmetic_mean, geometric_mean

#: Systems compared throughout the evaluation (§VI-F).
COMPRESSED_SYSTEMS = ("lcp", "lcp+align", "compresso")


@dataclass(frozen=True)
class ExperimentScale:
    """Problem size for the experiment harness."""

    #: Trace length and footprint scale.  The ratio matters: per-page
    #: one-time costs (conversions, first overflows) must amortize over
    #: many accesses per page, as they do in the paper's 200M-instruction
    #: CompressPoints.
    n_events: int = 8000
    scale: float = 0.02
    seed: int = 1
    capacity_touches: int = 20000
    capacity_footprint_cap: int = 400   # pages per benchmark in paging runs
    fig2_pages: int = 80                # pages sampled per benchmark
    benchmarks: Sequence[str] = BENCHMARK_ORDER
    mixes: Sequence[str] = MIX_ORDER
    #: When set, cycle-based units run with a :class:`repro.obs.Tracer`
    #: and journal a windowed timeline digest (this many demand accesses
    #: per window).  ``None`` keeps the zero-overhead null tracer.
    trace_window: Optional[int] = None
    #: Run cycle-based units with the memory-model sanitizer attached
    #: (``repro.check.sanitizer``, docs/LINTING.md); unit outputs and
    #: the run journal then carry the violation counts.  Besides
    #: True/False this accepts the ``"strict"`` and ``"recover"``
    #: sanitizer modes (docs/ROBUSTNESS.md).
    sanitize: object = False
    #: Fault-injection spec applied to every cycle-based unit
    #: (``repro.inject`` grammar, e.g. ``"line:0.01,meta:0.005"``);
    #: ``None`` disables injection.  Set via ``--inject`` on the CLI,
    #: usually together with ``sanitize="recover"``
    #: (docs/ROBUSTNESS.md).
    faults: Optional[str] = None
    #: Run multicore units across this many supervised worker processes
    #: (``repro.shard``, docs/SHARDING.md; set via ``--shards`` on the
    #: CLI).  0 keeps the single-process path; results are
    #: byte-identical either way.
    shards: int = 0

    def sim(self, **overrides) -> SimulationConfig:
        defaults = dict(n_events=self.n_events, scale=self.scale,
                        seed=self.seed, sanitize=self.sanitize,
                        faults=self.faults, shards=self.shards)
        defaults.update(overrides)
        return SimulationConfig(**defaults)


QUICK = ExperimentScale(n_events=1200, scale=0.02, capacity_touches=6000,
                        capacity_footprint_cap=120, fig2_pages=30,
                        benchmarks=("gcc", "mcf", "libquantum", "omnetpp"),
                        mixes=("mix1", "mix10"))
DEFAULT = ExperimentScale()
FULL = ExperimentScale(n_events=40000, scale=0.05, capacity_touches=60000,
                       fig2_pages=200)


def _profiles(scale: ExperimentScale):
    return [PROFILES[name] for name in scale.benchmarks]


def _run_units(runner: Optional[Runner], experiment: str,
               fn: Callable[..., Any],
               labeled_params: Sequence) -> List[Any]:
    """Submit one work unit per (label, params) pair; results in order."""
    active = runner if runner is not None else Runner()
    units = [
        WorkUnit(experiment=experiment, label=f"{experiment}/{label}",
                 fn=fn, params=params)
        for label, params in labeled_params
    ]
    return active.map(units)


def _stats_summary(stats: ControllerStats,
                   ratio: Optional[float] = None) -> Dict[str, Any]:
    """The ControllerStats digest journaled with each unit_end event.

    ``ratio`` attaches the unit's final compression ratio when the
    caller has one — it is a headline metric of the paper, so the
    results index (docs/RESULTS.md) wants it alongside the
    access-overhead counters.
    """
    summary = {
        "demand_accesses": stats.demand_accesses,
        "extra_accesses": stats.extra_accesses,
        "relative_extra_accesses": stats.relative_extra_accesses(),
        "metadata_lookups": stats.metadata_lookups,
        "metadata_hit_rate": stats.metadata_hit_rate(),
    }
    if ratio is not None:
        summary["compression_ratio"] = ratio
    return summary


# ---------------------------------------------------------------------------
# Fig. 2 — compression ratio: {BPC, BDI} x {LinePack, LCP}
# ---------------------------------------------------------------------------

def _fig2_combos():
    # LinePack uses Compresso's alignment-friendly bins; LCP packing uses
    # the prior work's compression-optimized bins (its own design).
    return {
        "bpc+linepack": (BPCCompressor(), LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)),
        "bpc+lcp": (BPCCompressor(), LCPPack(PRIOR_WORK_LINE_BINS)),
        "bdi+linepack": (BDICompressor(), LinePack(ALIGNMENT_FRIENDLY_LINE_BINS)),
        "bdi+lcp": (BDICompressor(), LCPPack(PRIOR_WORK_LINE_BINS)),
    }


def _line_size(compressor, cache: Dict[bytes, int], line: bytes) -> int:
    if is_zero_line(line):
        return 0
    size = cache.get(line)
    if size is None:
        size = min(compressor.compress(line).size_bytes, 64)
        cache[line] = size
    return size


def _unit_fig2(benchmark: str, scale: ExperimentScale) -> dict:
    """Fig. 2 cell: four algorithm/packing ratios for one benchmark."""
    profile = PROFILES[benchmark]
    combos = _fig2_combos()
    caches: Dict[str, Dict[bytes, int]] = {"bpc": {}, "bdi": {}}
    workload = Workload(profile, scale=scale.scale, seed=scale.seed)
    n_pages = min(workload.pages, scale.fig2_pages)
    row: Dict[str, Any] = {"benchmark": profile.name}
    for combo, (compressor, packer) in combos.items():
        cache = caches[compressor.name]
        raw = allocated = 0
        for page in range(n_pages):
            sizes = [
                _line_size(compressor, cache, line)
                for line in workload.page_lines(page)
            ]
            layout = packer.pack(sizes)
            raw += 4096
            if layout.total_bytes:
                allocated += max(
                    512, (layout.total_bytes + 511) // 512 * 512
                )
        row[combo] = raw / allocated if allocated else 64.0
    return {"row": row}


def run_fig2(scale: ExperimentScale = DEFAULT,
             runner: Optional[Runner] = None) -> ExperimentResult:
    """Compression ratios of the four algorithm/packing combinations."""
    result = ExperimentResult(
        experiment_id="fig2",
        title="Compression ratio, BPC/BDI x LinePack/LCP",
        columns=["benchmark"] + list(_fig2_combos()),
        paper_values={
            "bpc+linepack average": 1.85,
            "lcp loss vs linepack (bpc)": "13%",
            "lcp loss vs linepack (bdi)": "2.3%",
        },
        notes=["memory contents are the synthetic per-benchmark mixes "
               "(see workloads.profiles); zeusmp is the high outlier"],
    )
    outputs = _run_units(
        runner, "fig2", _unit_fig2,
        [(name, {"benchmark": name, "scale": scale})
         for name in scale.benchmarks])
    for output in outputs:
        result.add_row(**output["row"])
    for combo in _fig2_combos():
        result.summary[f"{combo} mean"] = arithmetic_mean(
            result.column_values(combo)
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 4 — additional data movement, fixed 512 B chunks vs 4 variable sizes
# ---------------------------------------------------------------------------

def _unit_fig4(benchmark: str, scale: ExperimentScale) -> dict:
    """Fig. 4 cell: fixed-chunk vs variable-chunk extra accesses."""
    profile = PROFILES[benchmark]
    configs = chunk_vs_variable_configs()
    row: Dict[str, Any] = {"benchmark": profile.name}
    stats = None
    timeline = None
    violations = None
    ratio = None
    for label, config in configs.items():
        prefix = "fixed" if label.startswith("fixed") else "var"
        run = _simulate_with_config(profile, config, scale)
        stats = run.controller_stats
        timeline = run.timeline
        ratio = run.final_ratio
        if run.sanitizer_violations is not None:
            violations = (violations or 0) + run.sanitizer_violations
        breakdown = stats.breakdown()
        row[f"{prefix}:total"] = stats.relative_extra_accesses()
        row[f"{prefix}:split"] = breakdown["split"]
        row[f"{prefix}:ovf"] = breakdown["overflow"]
        row[f"{prefix}:md"] = breakdown["metadata"]
    output = {"row": row, "stats": _stats_summary(stats, ratio=ratio)}
    if timeline is not None:
        output["timeline"] = timeline
    if violations is not None:
        output["sanitizer"] = {"violations": violations}
    return output


def run_fig4(scale: ExperimentScale = DEFAULT,
             runner: Optional[Runner] = None) -> ExperimentResult:
    """Extra accesses (split/overflow/metadata) of the unoptimized system."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="Extra data movement vs uncompressed (no optimizations)",
        columns=["benchmark",
                 "fixed:total", "fixed:split", "fixed:ovf", "fixed:md",
                 "var:total", "var:split", "var:ovf", "var:md"],
        paper_values={"average extra accesses": "63%", "maximum": "180%"},
    )
    outputs = _run_units(
        runner, "fig4", _unit_fig4,
        [(name, {"benchmark": name, "scale": scale})
         for name in scale.benchmarks])
    for output in outputs:
        result.add_row(**output["row"])
    result.summary["fixed mean extra"] = arithmetic_mean(
        result.column_values("fixed:total"))
    result.summary["variable mean extra"] = arithmetic_mean(
        result.column_values("var:total"))
    result.summary["max extra"] = max(
        result.column_values("fixed:total")
        + result.column_values("var:total"), default=0.0)
    return result


def _simulate_with_config(profile, config, scale: ExperimentScale):
    """Run the cycle simulator with an explicit controller config.

    When ``scale.trace_window`` is set the run is traced and the result
    carries a :func:`repro.obs.timeline_digest` in ``.timeline``.
    """
    tracer = (Tracer(digest_window=scale.trace_window)
              if scale.trace_window else None)
    return simulate(profile, "custom", scale.sim(), config=config,
                    tracer=tracer)


# ---------------------------------------------------------------------------
# Fig. 6 — the optimization ladder
# ---------------------------------------------------------------------------

def _unit_fig6(benchmark: str, scale: ExperimentScale) -> dict:
    """Fig. 6 cell: the optimization ladder on one benchmark."""
    profile = PROFILES[benchmark]
    row: Dict[str, Any] = {"benchmark": profile.name}
    stats = None
    timeline = None
    violations = None
    ratio = None
    for name, config in optimization_ladder():
        run = _simulate_with_config(profile, config, scale)
        stats = run.controller_stats
        timeline = run.timeline
        ratio = run.final_ratio
        if run.sanitizer_violations is not None:
            violations = (violations or 0) + run.sanitizer_violations
        row[name] = stats.relative_extra_accesses()
    output = {"row": row, "stats": _stats_summary(stats, ratio=ratio)}
    if timeline is not None:
        output["timeline"] = timeline
    if violations is not None:
        output["sanitizer"] = {"violations": violations}
    return output



def run_fig6(scale: ExperimentScale = DEFAULT,
             runner: Optional[Runner] = None) -> ExperimentResult:
    """Extra accesses as each data-movement optimization is added."""
    ladder = optimization_ladder()
    result = ExperimentResult(
        experiment_id="fig6",
        title="Reduction in extra accesses, optimizations applied in order",
        columns=["benchmark"] + [name for name, _ in ladder],
        paper_values={
            "ladder averages": "63% -> 36% -> 26% -> 19% -> 15%",
            "final breakdown": "3.2% split, 2.1% compression, 9.7% metadata",
        },
    )
    outputs = _run_units(
        runner, "fig6", _unit_fig6,
        [(name, {"benchmark": name, "scale": scale})
         for name in scale.benchmarks])
    for output in outputs:
        result.add_row(**output["row"])
    for name, _ in ladder:
        result.summary[f"{name} mean"] = arithmetic_mean(
            result.column_values(name))
    return result


# ---------------------------------------------------------------------------
# Fig. 7 — compression squandered without dynamic repacking
# ---------------------------------------------------------------------------

def _unit_fig7(benchmark: str, scale: ExperimentScale) -> dict:
    """Fig. 7 cell: final ratio with vs without dynamic repacking."""
    profile = PROFILES[benchmark]
    with_config = compresso_config()
    without_config = compresso_config(enable_repacking=False)
    # Repacking matters for *long-running* applications (§IV-B4): slots
    # only ever ratchet up without it, so each line must be rewritten
    # several times for the squandering to accumulate.  Use a longer
    # trace over a smaller footprint than the other experiments.
    long_scale = replace(scale, n_events=scale.n_events * 4,
                         scale=max(0.008, scale.scale / 4))
    with_run = _simulate_with_config(profile, with_config, long_scale)
    without_run = _simulate_with_config(profile, without_config,
                                        long_scale)
    with_ratio = with_run.final_ratio
    without_ratio = without_run.final_ratio
    row = {
        "benchmark": profile.name,
        "with_repack": with_ratio,
        "without_repack": without_ratio,
        "relative": without_ratio / with_ratio,
    }
    return {"row": row, "stats": _stats_summary(with_run.controller_stats,
                                                ratio=with_ratio)}


def run_fig7(scale: ExperimentScale = DEFAULT,
             runner: Optional[Runner] = None) -> ExperimentResult:
    """Final compression ratio without vs with dynamic repacking."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="Compression-ratio loss from disabling repacking",
        columns=["benchmark", "with_repack", "without_repack", "relative"],
        paper_values={"average squandered": "24% without repacking, "
                                            "2.6% with dynamic repacking"},
    )
    outputs = _run_units(
        runner, "fig7", _unit_fig7,
        [(name, {"benchmark": name, "scale": scale})
         for name in scale.benchmarks])
    for output in outputs:
        result.add_row(**output["row"])
    result.summary["mean relative ratio (no repack / repack)"] = (
        arithmetic_mean(result.column_values("relative")))
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — SimPoint vs CompressPoint
# ---------------------------------------------------------------------------

def _unit_fig9(benchmark: str, scale: ExperimentScale) -> dict:
    """Fig. 9 cell: representativeness of both selection methods."""
    intervals = profile_intervals(
        PROFILES[benchmark],
        n_intervals=16,
        events_per_interval=max(400, scale.n_events // 8),
        scale=scale.scale,
        seed=scale.seed,
    )
    true_mean = arithmetic_mean(
        [i.compression_ratio for i in intervals])
    # Average over several clustering seeds: a single k-means draw
    # can get lucky/unlucky on 16 intervals.
    seeds = [scale.seed + offset for offset in range(3)]
    simpoints = [select_points(intervals, k=4, with_compression=False,
                               seed=s_) for s_ in seeds]
    compresspoints = [select_points(intervals, k=4,
                                    with_compression=True, seed=s_)
                      for s_ in seeds]
    row = {
        "benchmark": benchmark,
        "true_mean": true_mean,
        "simpoint_est": arithmetic_mean(
            [p.estimate_ratio(intervals) for p in simpoints]),
        "compresspoint_est": arithmetic_mean(
            [p.estimate_ratio(intervals) for p in compresspoints]),
        "simpoint_err": arithmetic_mean(
            [representativeness_error(intervals, p)
             for p in simpoints]),
        "compresspoint_err": arithmetic_mean(
            [representativeness_error(intervals, p)
             for p in compresspoints]),
    }
    note = (f"{benchmark} interval ratios: "
            + ", ".join(f"{i.compression_ratio:.1f}" for i in intervals))
    return {"row": row, "note": note}


def run_fig9(scale: ExperimentScale = DEFAULT,
             benchmarks: Sequence[str] = ("GemsFDTD", "astar"),
             runner: Optional[Runner] = None) -> ExperimentResult:
    """Compressibility representativeness of the two selection methods."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="SimPoint vs CompressPoint compressibility representativeness",
        columns=["benchmark", "true_mean", "simpoint_est",
                 "compresspoint_est", "simpoint_err", "compresspoint_err"],
        paper_values={
            "observation": "GemsFDTD compressibility swings ~1x-13x across "
                           "phases; SimPoint picks unrepresentative regions",
        },
    )
    outputs = _run_units(
        runner, "fig9", _unit_fig9,
        [(name, {"benchmark": name, "scale": scale})
         for name in benchmarks])
    for output in outputs:
        result.add_row(**output["row"])
        result.notes.append(output["note"])
    return result


# ---------------------------------------------------------------------------
# Fig. 10 — single-core performance (cycle, capacity, overall)
# ---------------------------------------------------------------------------

def _unit_fig10(benchmark: str, scale: ExperimentScale,
                memory_fraction: float) -> dict:
    """Fig. 10 cell: cycle/capacity/overall for one benchmark."""
    profile = PROFILES[benchmark]
    sim = scale.sim()
    runs = {
        system: simulate(profile, system, sim)
        for system in ("uncompressed",) + COMPRESSED_SYSTEMS
    }
    baseline = runs["uncompressed"]
    capacity = capacity_impact(
        profile,
        {system: runs[system].ratio_timeline
         for system in COMPRESSED_SYSTEMS},
        CapacityConfig(
            memory_fraction=memory_fraction,
            n_touches=scale.capacity_touches,
            seed=scale.seed,
            footprint_pages=min(scale.capacity_footprint_cap,
                                profile.footprint_pages),
        ),
    )
    row: Dict[str, Any] = {"benchmark": profile.name}
    for system in COMPRESSED_SYSTEMS:
        row[f"{system}:cycle"] = runs[system].speedup_over(baseline)
        row[f"{system}:cap"] = capacity.relative(system)
        row[f"{system}:overall"] = (
            row[f"{system}:cycle"] * row[f"{system}:cap"])
    row["unconstrained:cap"] = capacity.relative("unconstrained")
    row["_stalled"] = bool(
        profile.name in CAPACITY_STALLERS or capacity.stalled)
    return {"row": row,
            "stats": _stats_summary(runs["compresso"].controller_stats,
                                    ratio=runs["compresso"].final_ratio)}


def run_fig10(scale: ExperimentScale = DEFAULT,
              memory_fraction: float = 0.7,
              runner: Optional[Runner] = None) -> ExperimentResult:
    """Per-benchmark cycle-based, capacity-impact and overall performance."""
    columns = ["benchmark"]
    for system in COMPRESSED_SYSTEMS:
        columns += [f"{system}:cycle", f"{system}:cap", f"{system}:overall"]
    columns.append("unconstrained:cap")
    result = ExperimentResult(
        experiment_id="fig10",
        title=f"Single-core performance at {int(memory_fraction*100)}% memory",
        columns=columns,
        paper_values={
            "cycle geomeans": "LCP 0.938 / LCP+Align 0.961 / Compresso 0.998",
            "capacity means (70%)": "LCP 1.11 / Compresso 1.29 / "
                                    "unconstrained 1.39",
            "overall": "LCP 1.03 / LCP+Align 1.06 / Compresso 1.28",
        },
        notes=["mcf, GemsFDTD and lbm are excluded from capacity/overall "
               "aggregates (they stall under constrained memory, §VII-A)"],
    )
    outputs = _run_units(
        runner, "fig10", _unit_fig10,
        [(name, {"benchmark": name, "scale": scale,
                 "memory_fraction": memory_fraction})
         for name in scale.benchmarks])
    for output in outputs:
        result.add_row(**output["row"])

    usable = [row for row in result.rows if not row.get("_stalled")]
    for system in COMPRESSED_SYSTEMS:
        result.summary[f"{system} cycle geomean"] = geometric_mean(
            [row[f"{system}:cycle"] for row in result.rows])
        result.summary[f"{system} capacity mean"] = arithmetic_mean(
            [row[f"{system}:cap"] for row in usable])
        result.summary[f"{system} overall geomean"] = geometric_mean(
            [row[f"{system}:overall"] for row in usable])
    result.summary["unconstrained capacity mean"] = arithmetic_mean(
        [row["unconstrained:cap"] for row in usable])
    return result


# ---------------------------------------------------------------------------
# Fig. 11 — 4-core performance
# ---------------------------------------------------------------------------

def _unit_fig11(mix: str, scale: ExperimentScale,
                memory_fraction: float) -> dict:
    """Fig. 11 cell: cycle/capacity/overall for one 4-core mix."""
    profiles = mix_profiles(mix)
    # 4-core events per core: keep total work comparable to single-core.
    sim = scale.sim(n_events=max(500, scale.n_events // 4))
    runs = {
        system: simulate_multicore(profiles, system, sim, mix)
        for system in ("uncompressed",) + COMPRESSED_SYSTEMS
    }
    baseline = runs["uncompressed"]
    # Four interleaved streams share the touches: keep the combined
    # footprint small enough that the budget actually binds (the
    # reference strings need >= ~50 touches per page).
    capacity = multicore_capacity_impact(
        profiles,
        {system: runs[system].ratio_timeline
         for system in COMPRESSED_SYSTEMS},
        CapacityConfig(
            memory_fraction=memory_fraction,
            n_touches=scale.capacity_touches * 2,
            seed=scale.seed,
            footprint_pages=min(150, scale.capacity_footprint_cap),
        ),
    )
    row: Dict[str, Any] = {"mix": mix}
    for system in COMPRESSED_SYSTEMS:
        row[f"{system}:cycle"] = runs[system].speedup_over(baseline)
        row[f"{system}:cap"] = capacity.relative(system)
        row[f"{system}:overall"] = (
            row[f"{system}:cycle"] * row[f"{system}:cap"])
    row["unconstrained:cap"] = capacity.relative("unconstrained")
    ratio = runs["compresso"].ratio_timeline[-1]
    return {"row": row,
            "stats": _stats_summary(runs["compresso"].controller_stats,
                                    ratio=ratio)}


def run_fig11(scale: ExperimentScale = DEFAULT,
              memory_fraction: float = 0.7,
              runner: Optional[Runner] = None) -> ExperimentResult:
    """Per-mix 4-core cycle, capacity and overall performance."""
    columns = ["mix"]
    for system in COMPRESSED_SYSTEMS:
        columns += [f"{system}:cycle", f"{system}:cap", f"{system}:overall"]
    columns.append("unconstrained:cap")
    result = ExperimentResult(
        experiment_id="fig11",
        title=f"4-core performance at {int(memory_fraction*100)}% memory",
        columns=columns,
        paper_values={
            "cycle geomeans": "LCP 0.90 / LCP+Align 0.95 / Compresso 0.975",
            "capacity": "LCP 1.97 / Compresso 2.33 / unconstrained 2.51",
            "overall": "LCP 1.78 / LCP+Align 1.90 / Compresso 2.27",
        },
    )
    outputs = _run_units(
        runner, "fig11", _unit_fig11,
        [(mix_name, {"mix": mix_name, "scale": scale,
                     "memory_fraction": memory_fraction})
         for mix_name in scale.mixes])
    for output in outputs:
        result.add_row(**output["row"])
    for system in COMPRESSED_SYSTEMS:
        result.summary[f"{system} cycle geomean"] = geometric_mean(
            [row[f"{system}:cycle"] for row in result.rows])
        result.summary[f"{system} capacity mean"] = arithmetic_mean(
            [row[f"{system}:cap"] for row in result.rows])
        result.summary[f"{system} overall geomean"] = geometric_mean(
            [row[f"{system}:overall"] for row in result.rows])
    result.summary["unconstrained capacity mean"] = arithmetic_mean(
        [row["unconstrained:cap"] for row in result.rows])
    return result


# ---------------------------------------------------------------------------
# Fig. 12 — energy
# ---------------------------------------------------------------------------

def _unit_fig12(benchmark: str, scale: ExperimentScale) -> dict:
    """Fig. 12 cell: relative DRAM/core energy for one benchmark."""
    profile = PROFILES[benchmark]
    model = EnergyModel()
    sim = scale.sim()
    runs = {
        system: simulate(profile, system, sim)
        for system in ("uncompressed",) + COMPRESSED_SYSTEMS
    }
    energies = {}
    for system, run in runs.items():
        stats = None if system == "uncompressed" else run.controller_stats
        energies[system] = model.evaluate(
            run.cycles, run.dram_stats.reads, run.dram_stats.writes,
            stats)
    baseline = energies["uncompressed"]
    row = {
        "benchmark": profile.name,
        "lcp:dram": model.relative(energies["lcp"], baseline)["dram"],
        "lcp+align:dram": model.relative(
            energies["lcp+align"], baseline)["dram"],
        "compresso:dram": model.relative(
            energies["compresso"], baseline)["dram"],
        "compresso:core": model.relative(
            energies["compresso"], baseline)["core"],
    }
    return {"row": row,
            "stats": _stats_summary(runs["compresso"].controller_stats,
                                    ratio=runs["compresso"].final_ratio)}


def run_fig12(scale: ExperimentScale = DEFAULT,
              runner: Optional[Runner] = None) -> ExperimentResult:
    """DRAM/core energy relative to the uncompressed system."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Energy relative to uncompressed system",
        columns=["benchmark", "lcp:dram", "lcp+align:dram",
                 "compresso:dram", "compresso:core"],
        paper_values={
            "compresso dram": "-11% vs uncompressed; 60% more savings than "
                              "LCP, 19% over LCP+Align",
            "compresso core": "equal to uncompressed",
        },
    )
    outputs = _run_units(
        runner, "fig12", _unit_fig12,
        [(name, {"benchmark": name, "scale": scale})
         for name in scale.benchmarks])
    for output in outputs:
        result.add_row(**output["row"])
    for column in result.columns[1:]:
        result.summary[f"{column} mean"] = arithmetic_mean(
            result.column_values(column))
    return result


# ---------------------------------------------------------------------------
# Tab. II — capacity sweep at 80/70/60%
# ---------------------------------------------------------------------------

def _unit_tab2(benchmark: str, scale: ExperimentScale,
               fractions: Sequence[float]) -> dict:
    """Tab. II cell: per-budget capacity factors for one benchmark.

    The compression-ratio timelines are budget-independent, so each
    benchmark simulates once and replays the paging model per budget.
    """
    profile = PROFILES[benchmark]
    sim = scale.sim()
    runs = {
        system: simulate(profile, system, sim)
        for system in ("lcp", "compresso")
    }
    timelines = {
        system: run.ratio_timeline for system, run in runs.items()
    }
    budgets = []
    for fraction in fractions:
        capacity = capacity_impact(
            profile, timelines,
            CapacityConfig(
                memory_fraction=fraction,
                n_touches=scale.capacity_touches,
                seed=scale.seed,
                footprint_pages=min(scale.capacity_footprint_cap,
                                    profile.footprint_pages),
            ),
        )
        budgets.append({
            "fraction": fraction,
            "lcp": capacity.relative("lcp"),
            "compresso": capacity.relative("compresso"),
            "unconstrained": capacity.relative("unconstrained"),
        })
    return {"budgets": budgets,
            "stats": _stats_summary(runs["compresso"].controller_stats,
                                    ratio=runs["compresso"].final_ratio)}


def run_tab2(scale: ExperimentScale = DEFAULT,
             fractions: Sequence[float] = (0.8, 0.7, 0.6),
             runner: Optional[Runner] = None) -> ExperimentResult:
    """Capacity-impact speedups vs constrained baseline, Tab. II shape."""
    result = ExperimentResult(
        experiment_id="tab2",
        title="Memory-capacity impact at 80/70/60% budgets (1-core mean)",
        columns=["budget", "lcp", "compresso", "unconstrained"],
        paper_values={
            "paper 1-core": "80%: 1.04/1.15/1.24  70%: 1.11/1.29/1.39  "
                            "60%: 1.28/1.56/1.72",
        },
        notes=["benchmarks that stall (mcf, GemsFDTD, lbm) are excluded, "
               "as in the paper"],
    )
    names = [name for name in scale.benchmarks
             if name not in CAPACITY_STALLERS]
    outputs = _run_units(
        runner, "tab2", _unit_tab2,
        [(name, {"benchmark": name, "scale": scale,
                 "fractions": list(fractions)})
         for name in names])
    for index, fraction in enumerate(fractions):
        values = {"lcp": [], "compresso": [], "unconstrained": []}
        for output in outputs:
            budget = output["budgets"][index]
            for system in values:
                values[system].append(budget[system])
        result.add_row(
            budget=f"{int(fraction * 100)}%",
            **{system: arithmetic_mean(vals)
               for system, vals in values.items()},
        )
    return result


# ---------------------------------------------------------------------------
# §IV-A design-space ablations
# ---------------------------------------------------------------------------

_ABLATION_BIN_SETS = {
    "4-bins-aligned (0/8/32/64)": ALIGNMENT_FRIENDLY_LINE_BINS,
    "4-bins-prior (0/22/44/64)": PRIOR_WORK_LINE_BINS,
    "8-bins (0/8/16/24/32/40/52/64)": EIGHT_LINE_BINS,
}


def _unit_ablation(label: str, scale: ExperimentScale) -> dict:
    """Ablation cell: ratio/overflow/split numbers for one bin set."""
    bins = _ABLATION_BIN_SETS[label]
    bpc = BPCCompressor()
    cache: Dict[bytes, int] = {}

    # Static part: pack page images across the suite under this bin set.
    page_sizes: List[List[int]] = []
    for profile in _profiles(scale):
        workload = Workload(profile, scale=scale.scale, seed=scale.seed)
        for page in range(min(workload.pages, scale.fig2_pages // 2)):
            page_sizes.append(
                [_line_size(bpc, cache, line)
                 for line in workload.page_lines(page)])

    packer = LinePack(bins)
    raw = allocated = 0
    for sizes in page_sizes:
        layout = packer.pack(sizes)
        raw += 4096
        if layout.total_bytes:
            allocated += max(512, (layout.total_bytes + 511) // 512 * 512)

    # Dynamic part: line-overflow frequency under this bin set, from the
    # gcc profile's overwrite phases (the overflow-heavy workload).
    config = compresso_config(
        line_bins=bins,
        enable_overflow_prediction=False,
        enable_ir_expansion=False,
        enable_metadata_half_entries=False,
    )
    run = _simulate_with_config(PROFILES["gcc"], config, scale)
    stats = run.controller_stats
    overflow_rate = stats.line_overflows / max(1, stats.demand_writes)
    flat_sizes = [s for sizes in page_sizes for s in sizes]
    row = {
        "config": label,
        "ratio": raw / allocated if allocated else 64.0,
        "line_overflow_rate": overflow_rate,
        "split_fraction": split_access_fraction(flat_sizes, bins),
    }
    return {"row": row, "stats": _stats_summary(stats,
                                                ratio=row["ratio"])}


def run_ablation_design_space(scale: ExperimentScale = DEFAULT,
                              runner: Optional[Runner] = None
                              ) -> ExperimentResult:
    """Line-bin count, bin placement, and page-size trade-offs (§IV-A)."""
    result = ExperimentResult(
        experiment_id="ablation",
        title="Design-space ablations: line bins and alignment",
        columns=["config", "ratio", "line_overflow_rate", "split_fraction"],
        paper_values={
            "8 vs 4 line bins": "ratio 1.82 vs 1.59; +17.5% line overflows "
                                "with 8 bins",
            "alignment bins": "splits 30.9% -> 3.2% for -0.25% compression",
        },
    )
    outputs = _run_units(
        runner, "ablation", _unit_ablation,
        [(label.split(" ")[0], {"label": label, "scale": scale})
         for label in _ABLATION_BIN_SETS])
    for output in outputs:
        result.add_row(**output["row"])
    return result


# ---------------------------------------------------------------------------
# Fault campaign — detection/recovery coverage (docs/ROBUSTNESS.md)
# ---------------------------------------------------------------------------

#: Fault sites x rates swept by ``run_faults``.
FAULT_SITES = ("line", "meta", "mdcache", "double-grant", "alloc-exhaust")
FAULT_RATES = (0.005, 0.02)


def _unit_fault_cell(site: str, rate: float,
                     scale: ExperimentScale) -> dict:
    """Fault-campaign cell: one (site, rate) injection run, reconciled."""
    from ..inject import campaign_cell
    benchmark = scale.benchmarks[0] if scale.benchmarks else "gcc"
    cell = campaign_cell(
        site, rate, benchmark=benchmark, seed=scale.seed,
        n_events=max(800, scale.n_events // 4), scale=scale.scale)
    return {"row": cell.as_row()}


def run_faults(scale: ExperimentScale = DEFAULT,
               runner: Optional[Runner] = None) -> ExperimentResult:
    """Fault campaign: injected vs detected/recovered per site and rate.

    Every cell runs with ``sanitize="recover"`` and reconciles each
    injected fault id against the ``fault_*``/``recovery_*`` trace
    events; the headline claim is ``silent == 0`` everywhere
    (docs/ROBUSTNESS.md).
    """
    result = ExperimentResult(
        experiment_id="faults",
        title="Fault-injection campaign: detection and recovery coverage",
        columns=["site", "rate", "injected", "detected", "recovered",
                 "masked", "silent"],
        notes=["Not a paper artifact: robustness validation of this "
               "model (docs/ROBUSTNESS.md)."],
    )
    outputs = _run_units(
        runner, "faults", _unit_fault_cell,
        [(f"{site}@{rate}", {"site": site, "rate": rate, "scale": scale})
         for site in FAULT_SITES for rate in FAULT_RATES])
    for output in outputs:
        result.add_row(**output["row"])
    result.summary["injected"] = sum(
        row["injected"] for row in result.rows)
    result.summary["silent"] = sum(
        row["silent"] for row in result.rows)
    return result


# ---------------------------------------------------------------------------
# Pressure campaign — overload control and recovery (docs/PRESSURE.md)
# ---------------------------------------------------------------------------

#: Overload scenarios x intensities swept by ``run_pressure``.
PRESSURE_SCENARIOS = ("collapse", "stampede", "diurnal")
PRESSURE_INTENSITIES = (0.5, 1.0, 2.0)
PRESSURE_ALLOCATIONS = ("chunks", "variable")


def _unit_pressure_cell(scenario: str, intensity: float, allocation: str,
                        scale: ExperimentScale) -> dict:
    """Pressure-campaign cell: one overload scenario, reconciled.

    The journaled ``stats`` digest carries the fairness and stall
    metrics (Jain's index, p95/p99 stall cycles) so the results index
    (docs/RESULTS.md) picks them up without any schema change.
    """
    from ..pressure import pressure_cell
    cell = pressure_cell(scenario, intensity, allocation=allocation,
                         seed=scale.seed,
                         n_steps=max(60, min(240, scale.n_events // 15)))
    stats = dict(cell.metrics)
    stats["oom_escaped"] = cell.oom_escaped
    stats["recovered"] = int(cell.recovered)
    stats["unreconciled"] = len(cell.unreconciled)
    stats["degraded_enters"] = cell.degraded_enters
    stats["degraded_exits"] = cell.degraded_exits
    return {"row": cell.as_row(), "stats": stats}


def run_pressure(scale: ExperimentScale = DEFAULT,
                 runner: Optional[Runner] = None) -> ExperimentResult:
    """Pressure campaign: overload control, fairness, recovery drills.

    Sweeps every (scenario, intensity, allocation) cell of the
    multi-tenant overload campaign (docs/PRESSURE.md).  The headline
    resilience claims: ``oom_escaped == 0`` and ``unreconciled == 0``
    everywhere, and every cell that entered degraded mode exits it
    once pressure recedes (``all_recovered``).
    """
    result = ExperimentResult(
        experiment_id="pressure",
        title="Pressure campaign: multi-tenant overload control and recovery",
        columns=["scenario", "intensity", "allocation", "requests",
                 "throttled", "shed", "denied", "oom_absorbed", "page_outs",
                 "escalations", "degraded_enters", "degraded_exits",
                 "oom_escaped", "recovered", "unreconciled",
                 "jain_fairness", "stall_p95", "stall_p99"],
        notes=["Not a paper artifact: overload-resilience validation of "
               "this model (docs/PRESSURE.md)."],
    )
    outputs = _run_units(
        runner, "pressure", _unit_pressure_cell,
        [(f"{scenario}@{intensity}/{allocation}",
          {"scenario": scenario, "intensity": intensity,
           "allocation": allocation, "scale": scale})
         for scenario in PRESSURE_SCENARIOS
         for intensity in PRESSURE_INTENSITIES
         for allocation in PRESSURE_ALLOCATIONS])
    for output in outputs:
        row = dict(output["row"])
        row.pop("admitted", None)
        result.add_row(**row)
    result.summary["oom_escaped"] = sum(
        row["oom_escaped"] for row in result.rows)
    result.summary["unreconciled"] = sum(
        row["unreconciled"] for row in result.rows)
    result.summary["all_recovered"] = int(all(
        row["recovered"] for row in result.rows))
    result.summary["min_jain_fairness"] = min(
        row["jain_fairness"] for row in result.rows)
    return result


# ---------------------------------------------------------------------------
# §VII-C/D/E — energy and area overheads, offset-calculation circuit
# ---------------------------------------------------------------------------

def _unit_sec7() -> dict:
    """§VII cell: the analytic overhead numbers (no workload input)."""
    constants = EnergyConstants()
    fractions = constants.sanity_fractions()
    area = AreaReport()
    adder = offset_adder_for_bins(ALIGNMENT_FRIENDLY_LINE_BINS)
    rows = [
        {"quantity": "bpc_vs_channel_power",
         "value": fractions["bpc_vs_channel_power"]},
        {"quantity": "metadata_vs_dram_read",
         "value": fractions["metadata_vs_dram_read"]},
        {"quantity": "bpc_area_um2", "value": area.bpc_um2},
        {"quantity": "metadata_cache_area_um2",
         "value": area.metadata_cache_um2},
        {"quantity": "total_area_mm2", "value": area.total_mm2},
        {"quantity": "adder_nand_gates", "value": float(adder.nand_gates)},
        {"quantity": "adder_gate_delays_naive",
         "value": float(adder.gate_delays_naive)},
        {"quantity": "adder_gate_delays_optimized",
         "value": float(adder.gate_delays_optimized)},
        {"quantity": "adder_visible_cycles",
         "value": float(adder.visible_cycles())},
    ]
    return {"rows": rows}


def run_sec7_energy_area(runner: Optional[Runner] = None
                         ) -> ExperimentResult:
    """Analytic overhead numbers the paper states in §VII-C/D/E."""
    result = ExperimentResult(
        experiment_id="sec7",
        title="Energy/area overheads and the offset-calculation circuit",
        columns=["quantity", "value"],
        paper_values={
            "bpc power": "7 mW, <0.4% of a DDR4-2666 channel",
            "metadata cache access": "0.08 nJ, <0.8% of a DRAM read",
            "areas": "BPC 43 Kum2 (~61K NAND2); 96KB cache ~100 Kum2",
            "offset adder": "<1.5K NAND gates, 38 -> 32 gate delays, "
                            "1 visible cycle at DDR4-2666",
        },
    )
    outputs = _run_units(runner, "sec7", _unit_sec7, [("analytic", {})])
    for row in outputs[0]["rows"]:
        result.add_row(**row)
    return result
