"""Export experiment results to CSV / JSON for external plotting.

The ASCII renderer (:mod:`.report`) is for terminals; these writers
produce machine-readable artifacts so the paper's figures can be
re-plotted with any tool.  Both formats carry the full rows, the
summary aggregates, and the paper's reference values.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, Union

from .report import ExperimentResult


def to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialize one experiment result as JSON."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [
            {key: value for key, value in row.items()
             if not key.startswith("_")}
            for row in result.rows
        ],
        "summary": dict(result.summary),
        "paper_values": dict(result.paper_values),
        "notes": list(result.notes),
    }
    return json.dumps(payload, indent=indent, default=str)


def to_csv(result: ExperimentResult) -> str:
    """Serialize the result's rows as CSV (columns in display order)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(result.columns),
                            extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_result(result: ExperimentResult,
                 directory: Union[str, Path]) -> dict:
    """Write ``<id>.json`` and ``<id>.csv`` into ``directory``.

    Returns the paths written, keyed by format.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / f"{result.experiment_id}.json"
    csv_path = directory / f"{result.experiment_id}.csv"
    json_path.write_text(to_json(result))
    csv_path.write_text(to_csv(result))
    return {"json": json_path, "csv": csv_path}


def write_results(results: Iterable[ExperimentResult],
                  directory: Union[str, Path]) -> list:
    """Write a batch of results; returns the path dicts in order."""
    return [write_result(result, directory) for result in results]
