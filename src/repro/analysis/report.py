"""ASCII rendering for experiment results.

Every experiment in :mod:`repro.analysis.experiments` returns an
:class:`ExperimentResult`; :func:`render` turns it into the same
rows/series the paper's table or figure reports, plus the paper's
reference numbers where the paper states them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str              # e.g. "fig2"
    title: str
    columns: Sequence[str]          # first column is the row label
    rows: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)
    paper_values: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def column_values(self, column: str) -> List[float]:
        return [row[column] for row in self.rows
                if isinstance(row.get(column), (int, float))]


def _format(value: Any, width: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.3f}"
    return f"{str(value):>{width}}"


def render(result: ExperimentResult, label_width: int = 12,
           column_width: int = 10) -> str:
    """Render an experiment as an aligned ASCII table."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    header = f"{result.columns[0]:<{label_width}}" + "".join(
        f"{c:>{column_width}}" for c in result.columns[1:]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        label = str(row.get(result.columns[0], ""))
        cells = "".join(
            _format(row.get(column, ""), column_width)
            for column in result.columns[1:]
        )
        lines.append(f"{label:<{label_width}}" + cells)
    if result.summary:
        lines.append("-" * len(header))
        for key, value in result.summary.items():
            value_str = f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"{key:<{label_width + 2}}{value_str}")
    if result.paper_values:
        lines.append("paper reports:")
        for key, value in result.paper_values.items():
            lines.append(f"  {key}: {value}")
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
