"""Supervised sharded simulation: fault-tolerant worker processes with
heartbeats, deterministic replay, and chaos campaigns.

See docs/SHARDING.md for the full design.  Quick tour:

* :class:`ShardTopology` — consistent-hash page→shard routing
  (``repro.shard.topology``);
* message schema, :class:`SequenceTracker` and the replayable
  :class:`MessageLog` (``repro.shard.messages``);
* :class:`ShardWorker` / :func:`shard_main` — the deterministic
  replica with partitioned payload bytes (``repro.shard.worker``);
* :class:`ShardSupervisor` / :class:`ShardRunConfig` /
  :func:`simulate_multicore_sharded` — heartbeats, backpressure,
  quarantine, kill-respawn-replay recovery, N-way agreement
  (``repro.shard.supervisor``);
* :class:`ChaosInjector` / :class:`ChaosCampaign` — process-level
  fault sweeps reconciled against ``shard_*`` trace events
  (``repro.shard.chaos``).

Enable with ``SimulationConfig(shards=N)`` or ``repro.analysis run
--shards N``; the merged result is byte-identical to the
single-process ``simulate_multicore``.
"""

from .chaos import (
    CHAOS_SITES,
    ChaosCampaign,
    ChaosCellOutcome,
    ChaosInjector,
    ChaosRecord,
    ChaosSpec,
    chaos_cell,
    parse_chaos_spec,
    reconcile_chaos,
)
from .messages import (
    COMMAND_KINDS,
    REPLY_KINDS,
    MessageLog,
    PoisonMessageError,
    SequenceTracker,
    decode_message,
    encode_message,
    make_message,
    quarantine_poison,
)
from .supervisor import (
    ShardDivergenceError,
    ShardError,
    ShardRunConfig,
    ShardSupervisor,
    simulate_multicore_sharded,
)
from .topology import ShardTopology
from .worker import (
    ShardSpec,
    ShardWorker,
    canonical_json,
    payload_to_result,
    result_payload,
    shard_main,
    state_digest,
)

__all__ = [
    "CHAOS_SITES",
    "COMMAND_KINDS",
    "REPLY_KINDS",
    "ChaosCampaign",
    "ChaosCellOutcome",
    "ChaosInjector",
    "ChaosRecord",
    "ChaosSpec",
    "MessageLog",
    "PoisonMessageError",
    "SequenceTracker",
    "ShardDivergenceError",
    "ShardError",
    "ShardRunConfig",
    "ShardSpec",
    "ShardSupervisor",
    "ShardTopology",
    "ShardWorker",
    "canonical_json",
    "chaos_cell",
    "decode_message",
    "encode_message",
    "make_message",
    "parse_chaos_spec",
    "payload_to_result",
    "quarantine_poison",
    "reconcile_chaos",
    "result_payload",
    "shard_main",
    "simulate_multicore_sharded",
    "state_digest",
]
