"""Shard worker: a deterministic multicore replica with partitioned
payload bytes (docs/SHARDING.md).

Every worker advances the *same* :class:`repro.simulation.multicore.
MulticoreRun` — the full control-plane computation is replicated, so
all shards agree byte-for-byte by construction — but a worker
materializes controller shadow-payload bytes only for the pages its
consistent-hash partition owns.  Payload bytes are the dominant memory
of a capacity sweep (4 KB per page vs. a few dozen bytes of metadata),
so partitioning them is what sharding buys; replicating the integer
control state is what makes divergence detection and crash recovery
*provable* rather than statistical.

The worker is a pure function of ``(spec, inbound command log)``: its
spec carries every seed and parameter, commands arrive in a journaled
order, heartbeats happen only at command boundaries, and nothing here
reads the wall clock into results.  That purity is the replay
invariant — a killed worker respawned from its spec and replayed from
its :class:`~repro.shard.messages.MessageLog` reaches byte-identical
state, which the supervisor verifies against the digests the dead
worker had already reported.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.stats import ControllerStats
from ..memory.dram import DRAMStats
from ..simulation.multicore import MulticoreResult, MulticoreRun
from ..simulation.simulator import SimulationConfig
from ..workloads.profiles import get_profile
from .messages import PoisonMessageError, decode_message, encode_message, \
    make_message
from .topology import ShardTopology

#: Shared sentinel standing in for a non-owned page's payload bytes.
#: It must not be ``None`` (the controller's zero-line semantics and
#: ``lines_with_data`` counts key on ``is not None``) and its content
#: is never read on the sharded path: line sizes are recomputed only by
#: the recover-mode rebuild, which sharded runs do not enable.
_ELIDED = b"\x00elided"


@dataclass
class ShardSpec:
    """Everything a worker needs to recompute its state from scratch."""

    shard_id: int
    n_shards: int
    benchmarks: List[str]
    system: str
    mix: str = ""
    #: ``SimulationConfig`` fields for the run (``shards`` forced to 0
    #: inside the worker — a shard never re-shards).
    sim: Dict[str, object] = field(default_factory=dict)
    virtual_nodes: int = 64

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def build_sim(self) -> SimulationConfig:
        fields_ = dict(self.sim)
        fields_["shards"] = 0
        return SimulationConfig(**fields_)


def canonical_json(payload: object) -> str:
    """Stable serialization both digesting and agreement checks use."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _dram_dict(stats: DRAMStats) -> Dict[str, int]:
    return dataclasses.asdict(stats)


def state_digest(run: MulticoreRun) -> str:
    """SHA-256 over the replicated state every shard must agree on."""
    payload = {
        "steps": run.steps,
        "core_cycles": [core.now for core in run.cores],
        "instructions": [core.stats.instructions for core in run.cores],
        "stats": run.controller.stats.as_dict(),
        "dram": _dram_dict(run.dram.stats),
        "ratio_timeline": run.ratio_timeline,
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


def result_payload(result: MulticoreResult) -> Dict[str, object]:
    """The merged-result fields, as a JSON-stable dict."""
    return {
        "mix": result.mix,
        "system": result.system,
        "core_cycles": list(result.core_cycles),
        "core_instructions": list(result.core_instructions),
        "controller_stats": result.controller_stats.as_dict(),
        "dram_stats": _dram_dict(result.dram_stats),
        "ratio_timeline": list(result.ratio_timeline),
        "metadata_hit_rate": result.metadata_hit_rate,
    }


def payload_to_result(payload: Dict[str, object]) -> MulticoreResult:
    """Rebuild a :class:`MulticoreResult` from an agreed payload."""
    return MulticoreResult(
        mix=payload["mix"],
        system=payload["system"],
        core_cycles=list(payload["core_cycles"]),
        core_instructions=list(payload["core_instructions"]),
        controller_stats=ControllerStats(**payload["controller_stats"]),
        dram_stats=DRAMStats(**payload["dram_stats"]),
        ratio_timeline=list(payload["ratio_timeline"]),
        metadata_hit_rate=payload["metadata_hit_rate"],
    )


class ShardWorker:
    """One shard's replica: full interleave, partitioned payloads."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.topology = ShardTopology(spec.n_shards, spec.virtual_nodes)
        profiles = [get_profile(name) for name in spec.benchmarks]
        self.run = MulticoreRun(profiles, spec.system, spec.build_sim(),
                                mix_name=spec.mix)
        self._owned = [
            self.topology.shard_of(page) == spec.shard_id
            for page in range(self.run.total_pages)
        ]
        self._elide_all()
        self._result_payload: Optional[Dict[str, object]] = None
        self._seq = 0

    # -- payload partitioning ---------------------------------------------

    def _elide_page(self, page: int) -> None:
        states = getattr(self.run.controller, "pages", None)
        if states is None:        # uncompressed baseline: no shadow data
            return
        state = states.get(page)
        if state is None:
            return
        data = state.data
        for line, payload in enumerate(data):
            if payload is not None and payload is not _ELIDED:
                data[line] = _ELIDED

    def _elide_all(self) -> None:
        for page in range(self.run.total_pages):
            if not self._owned[page]:
                self._elide_page(page)

    def _after_step(self, page: int) -> None:
        if not self._owned[page]:
            self._elide_page(page)

    def resident_payload_pages(self) -> int:
        """Pages whose payload bytes this worker actually holds."""
        return sum(1 for owned in self._owned if owned)

    # -- protocol ----------------------------------------------------------

    def advance(self, until: int) -> int:
        return self.run.advance(until, after_step=self._after_step)

    def finish_payload(self) -> Dict[str, object]:
        if self._result_payload is None:
            self._result_payload = result_payload(self.run.finish())
        return self._result_payload

    def _send(self, replies, kind: str, **fields) -> None:
        self._seq += 1
        message = make_message(kind, self._seq, shard=self.spec.shard_id,
                               **fields)
        replies.put(encode_message(message))

    def _send_progress(self, replies) -> None:
        if self._result_payload is not None:
            self._send(replies, "result", steps=self.run.steps,
                       digest=state_digest(self.run),
                       payload=self._result_payload)
        else:
            self._send(replies, "progress", steps=self.run.steps,
                       digest=state_digest(self.run))

    def serve(self, commands, replies) -> None:
        """Command loop: run segments, answer pings, finish, stop."""
        self._send(replies, "hello", steps=self.run.steps)
        while True:
            raw = commands.get()
            try:
                message = decode_message(raw)
            except PoisonMessageError as exc:
                self._send(replies, "error",
                           message=f"poison command: {exc}")
                continue
            kind = message["kind"]
            try:
                if kind == "run":
                    self.advance(message["until"])
                    self._send_progress(replies)
                elif kind == "ping":
                    self._send_progress(replies)
                elif kind == "stall":
                    # Chaos directive: hold the heartbeat, not the
                    # state — nothing below reads this pause.
                    time.sleep(message["seconds"])
                elif kind == "finish":
                    payload = self.finish_payload()
                    self._send(replies, "result", steps=self.run.steps,
                               digest=state_digest(self.run),
                               payload=payload)
                elif kind == "stop":
                    return
            except Exception:
                self._send(replies, "error",
                           message=traceback.format_exc())
                return


def shard_main(spec_dict: Dict[str, object], commands, replies) -> None:
    """Process entry point: build the replica and serve commands.

    Module-level so it is picklable by reference across the
    ``multiprocessing`` boundary, and dispatched via the supervisor's
    ``worker=`` parameter so the flowcheck shared-state-race rule
    treats it as a worker root (docs/FLOWCHECK.md).
    """
    try:
        worker = ShardWorker(ShardSpec(**spec_dict))
    except Exception:
        shard = spec_dict.get("shard_id", -1) if isinstance(
            spec_dict, dict) else -1
        message = make_message("error", 1, shard=int(shard),
                               message=traceback.format_exc())
        replies.put(encode_message(message))
        return
    worker.serve(commands, replies)
