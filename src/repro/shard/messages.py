"""Shard message schema, framing, and the replayable inbound log.

Every byte crossing a shard process boundary is one JSON object with a
``kind``, a per-sender ``seq``, and kind-specific fields
(docs/SHARDING.md).  The schema here is the contract both sides
validate: a message that fails :func:`decode_message` is *poison* and
is quarantined by the supervisor rather than interpreted.

Sequence numbers make the channel idempotent: worker→supervisor
progress is **cumulative** (each message carries the worker's total
step count and state digest), so a dropped message is superseded by
the next one, a duplicated message is recognized by its stale ``seq``,
and a reordered message is recognized as stale-but-unseen.  The
:class:`SequenceTracker` classifies exactly those three cases.

:class:`MessageLog` is the replay journal: one per shard, holding the
worker's spec (its seed and workload parameters) followed by every
command the supervisor sent it, fsynced before the send.  A killed
worker respawned from its spec and replayed from this log reaches
byte-identical state — the replay invariant the recovery tests assert.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..runner.journal import read_journal

#: Commands the supervisor sends a worker.  ``stall`` is a chaos
#: directive (docs/SHARDING.md); it is journaled with ``chaos: true``
#: and stripped on replay, so recovery never re-injects the fault.
COMMAND_KINDS: Dict[str, Dict[str, tuple]] = {
    "run": {"until": (int,)},
    "ping": {},
    "stall": {"seconds": (int, float)},
    "finish": {},
    "stop": {},
}

#: Replies a worker sends the supervisor.  ``progress`` and ``result``
#: are cumulative: ``steps`` is the worker's global step count so far
#: and ``digest`` the canonical hash of its replicated state.
REPLY_KINDS: Dict[str, Dict[str, tuple]] = {
    "hello": {"shard": (int,), "steps": (int,)},
    "progress": {"shard": (int,), "steps": (int,), "digest": (str,)},
    "result": {"shard": (int,), "steps": (int,), "digest": (str,),
               "payload": (dict,)},
    "error": {"shard": (int,), "message": (str,)},
}

MESSAGE_KINDS: Dict[str, Dict[str, tuple]] = {**COMMAND_KINDS, **REPLY_KINDS}


class PoisonMessageError(ValueError):
    """A message that failed framing or schema validation."""


def make_message(kind: str, seq: int, **fields: Any) -> Dict[str, Any]:
    """Build and validate one message dict."""
    message = {"kind": kind, "seq": seq, **fields}
    problems = validate_message(message)
    if problems:
        raise ValueError(f"bad {kind!r} message: {'; '.join(problems)}")
    return message


def validate_message(message: Any) -> List[str]:
    """Schema problems for one decoded message (empty = valid)."""
    if not isinstance(message, dict):
        return [f"not an object ({type(message).__name__})"]
    kind = message.get("kind")
    if kind not in MESSAGE_KINDS:
        return [f"unknown kind {kind!r}"]
    problems: List[str] = []
    seq = message.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        problems.append(f"seq {seq!r} is not a non-negative int")
    for name, types in MESSAGE_KINDS[kind].items():
        if name not in message:
            problems.append(f"missing field {name!r}")
        elif isinstance(message[name], bool) and bool not in types:
            problems.append(f"field {name!r} has type bool")
        elif not isinstance(message[name], types):
            problems.append(f"field {name!r} has type "
                            f"{type(message[name]).__name__}")
    return problems


def encode_message(message: Dict[str, Any]) -> str:
    """Canonical one-line JSON framing (stable key order)."""
    return json.dumps(message, sort_keys=True, separators=(",", ":"))


def decode_message(text: Any) -> Dict[str, Any]:
    """Parse and validate one framed message; poison raises."""
    if not isinstance(text, str):
        raise PoisonMessageError(
            f"frame is not a string ({type(text).__name__})")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PoisonMessageError(f"undecodable frame: {exc}") from None
    problems = validate_message(message)
    if problems:
        raise PoisonMessageError("; ".join(problems))
    return message


class SequenceTracker:
    """Classify one sender's stream into new / duplicate / stale.

    ``duplicate`` — a seq already delivered (the dup chaos site);
    ``stale`` — a seq below the high-water mark never seen before (the
    reorder chaos site: it was held back past a newer message).  Both
    are absorbed by the cumulative-progress protocol; the classes only
    exist so the supervisor can emit the matching ``shard_msg_*``
    observation event for chaos reconciliation.
    """

    def __init__(self) -> None:
        self.high = -1
        self._seen: set = set()

    def classify(self, seq: int) -> str:
        if seq in self._seen:
            return "duplicate"
        self._seen.add(seq)
        if seq <= self.high:
            return "stale"
        self.high = seq
        return "new"


class MessageLog:
    """Append-only replay log: one shard's spec + inbound commands.

    Each append is flushed and fsynced before the supervisor sends the
    corresponding message, so the log is always at least as complete
    as what the worker may have seen — the invariant replay relies on.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # flowcheck: boundary(log bytes are replay provenance fsynced to disk; simulated results never read them)
    def append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(encode_message(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # flowcheck: boundary(spec header is replay provenance; simulated results never read it)
    def write_spec(self, spec: Dict[str, Any]) -> None:
        """First record: the worker's full deterministic spec."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps({"spec": spec}, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def log_command(self, message: Dict[str, Any],
                    chaos: bool = False) -> None:
        """Journal one supervisor→worker command before it is sent."""
        record = dict(message)
        if chaos:
            record["chaos"] = True
        self.append(record)

    def read(self) -> Tuple[Optional[Dict[str, Any]],
                            List[Dict[str, Any]]]:
        """(spec, commands) from the log; tolerates a torn final line.

        The torn-tail recovery is :func:`repro.runner.journal.
        read_journal`'s: a record cut short by a crash mid-append is
        truncated away (with a warning), never half-parsed.
        """
        if not self.path.exists():
            return None, []
        spec: Optional[Dict[str, Any]] = None
        commands: List[Dict[str, Any]] = []
        for record in read_journal(self.path, skip_invalid=True):
            if "spec" in record and spec is None:
                spec = record["spec"]
            elif "kind" in record:
                commands.append(record)
        return spec, commands

    def replayable(self) -> List[Dict[str, Any]]:
        """Logged commands minus chaos directives (replay strips them)."""
        _, commands = self.read()
        return [dict(command) for command in commands
                if not command.get("chaos")]


# flowcheck: boundary(quarantine file is diagnostic provenance; simulated results never read it)
def quarantine_poison(path: str | Path, raw: Any, reason: str,
                      shard: int) -> None:
    """Append one poison frame to the quarantine file (never raises
    on undecodable payloads — the frame is stored ``repr``-escaped)."""
    record = {"shard": shard, "reason": reason, "raw": repr(raw)}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
