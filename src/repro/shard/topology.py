"""Consistent-hash page→shard routing (docs/SHARDING.md).

The supervisor and every worker derive the same ownership map from
``(n_shards, virtual_nodes)`` alone — pure SHA-256 arithmetic, no RNG,
no wall clock — so a respawned worker recomputes exactly the ownership
its predecessor had, and the map never has to cross the process
boundary.  Virtual nodes smooth the ring: each shard projects
``virtual_nodes`` points onto the hash circle and a page belongs to
the shard owning the first point at or after the page's own hash.

Consistent hashing (rather than ``page % n_shards``) is deliberate:
growing the shard count for a bigger capacity sweep remaps only
``~1/n`` of the pages, so cached per-page artifacts stay mostly valid
across topology changes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple


def _point(token: str) -> int:
    """Deterministic 64-bit position on the hash ring."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardTopology:
    """Deterministic page→shard ownership for one sharded run."""

    def __init__(self, n_shards: int, virtual_nodes: int = 64) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if virtual_nodes < 1:
            raise ValueError(
                f"need at least one virtual node, got {virtual_nodes}")
        self.n_shards = n_shards
        self.virtual_nodes = virtual_nodes
        ring: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(virtual_nodes):
                ring.append((_point(f"shard:{shard}:{vnode}"), shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def shard_of(self, page: int) -> int:
        """The shard owning ``page`` (successor point on the ring)."""
        point = _point(f"page:{page}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0   # wrap around the circle
        return self._owners[index]

    def owns(self, shard_id: int, page: int) -> bool:
        return self.shard_of(page) == shard_id

    def owned_pages(self, shard_id: int, n_pages: int) -> List[int]:
        """All pages in ``range(n_pages)`` owned by ``shard_id``."""
        return [page for page in range(n_pages)
                if self.shard_of(page) == shard_id]

    def counts(self, n_pages: int) -> List[int]:
        """Pages owned per shard over ``range(n_pages)`` (balance check)."""
        owned = [0] * self.n_shards
        for page in range(n_pages):
            owned[self.shard_of(page)] += 1
        return owned
