"""Process-level chaos: kill, stall, and mangle shard traffic — then
prove every fault was seen (docs/SHARDING.md).

The :class:`ChaosInjector` extends the cycle-level fault machinery of
``repro.inject`` to the process boundary.  Its sites are the failure
modes a sharded run is exposed to that a single-process run is not:

* ``kill`` — SIGKILL a live worker mid-run;
* ``stall-heartbeat`` — delay one worker's replies past the deadline;
* ``drop`` / ``dup`` / ``reorder`` — lose, repeat, or delay one
  worker→supervisor frame;
* ``poison`` — corrupt one frame so it fails schema validation.

Every committed fault is a :class:`ChaosRecord`; :func:`reconcile_chaos`
matches each record against the supervisor's ``shard_*`` trace events
exactly like ``repro.inject.campaign`` matches cycle-level faults: a
fault with no detection event is **silent**, and the campaign's
deliverable is that the silent column is zero *and* the chaosed run's
merged result stays byte-identical to the unchaosed one.

``stall-heartbeat`` is the one pressure-style site (the analogue of
``alloc-exhaust`` in the fault campaign): a stall that elapses while
the supervisor happens not to be waiting on that shard never crosses
the deadline, so an undetected stall is **masked**, not silent.  The
five remaining sites have deterministic observables and are held to
the strict standard.
"""

from __future__ import annotations

import dataclasses
import random
import tempfile
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..obs import Tracer
from ..simulation.multicore import simulate_multicore
from ..simulation.simulator import SimulationConfig
from ..workloads.profiles import get_profile
from .supervisor import (
    ShardDivergenceError,
    ShardError,
    ShardRunConfig,
    ShardSupervisor,
)
from .worker import canonical_json, result_payload

#: Process-level chaos sites (the ``site:rate[:burst]`` grammar of
#: ``parse_chaos_spec`` — same shape as ``repro.inject.faults``).
CHAOS_SITES: Tuple[str, ...] = (
    "kill", "stall-heartbeat", "drop", "dup", "reorder", "poison")

#: Message-path chaos mixed into every campaign cell alongside the
#: swept kill rate.
DEFAULT_MESSAGE_CHAOS = "drop:0.08,dup:0.08,reorder:0.08,poison:0.05"

#: Event names that count as *detection*, per chaos site.  ``shard_exit``
#: appears for the message sites too: a frame erased by a concurrent
#: kill is repaired by that kill's replay, and the exit event is the
#: honest detection of the channel loss.
_DETECT: Dict[str, Tuple[str, ...]] = {
    "kill": ("shard_exit", "shard_heartbeat_miss"),
    "stall-heartbeat": ("shard_heartbeat_miss",),
    "drop": ("shard_heartbeat_miss", "shard_exit"),
    "dup": ("shard_msg_dup", "shard_exit"),
    "reorder": ("shard_msg_reorder", "shard_heartbeat_miss", "shard_exit"),
    "poison": ("shard_quarantine", "shard_exit"),
}

#: Event names that count as *recovery*, per chaos site.  Duplicate and
#: reordered frames are absorbed by the sequence tracker itself, so
#: their detection event is also their recovery.
_RECOVER: Dict[str, Tuple[str, ...]] = {
    "kill": ("shard_replay",),
    "stall-heartbeat": ("shard_resend", "shard_replay"),
    "drop": ("shard_resend", "shard_replay"),
    "dup": ("shard_msg_dup", "shard_replay"),
    "reorder": ("shard_msg_reorder", "shard_resend", "shard_replay"),
    "poison": ("shard_resend", "shard_replay"),
}

#: Sites whose faults are only observable when they cross a deadline
#: the supervisor was actually watching; undetected ones are *masked*.
_PRESSURE_SITES: Tuple[str, ...] = ("stall-heartbeat",)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos site armed at a per-segment probability."""

    site: str
    rate: float
    burst: int = 1


def parse_chaos_spec(text: str) -> List[ChaosSpec]:
    """Parse ``site:rate[:burst]`` comma-separated chaos specs.

    Example: ``"kill:0.1,drop:0.05,poison:0.02:2"`` — the grammar of
    the fault-injection CLI (docs/ROBUSTNESS.md), with process-level
    sites.
    """
    specs: List[ChaosSpec] = []
    for part in str(text).split(","):
        part = part.strip()
        if not part:
            continue
        fields_ = part.split(":")
        if len(fields_) not in (2, 3):
            raise ValueError(
                f"bad chaos spec {part!r}: expected site:rate[:burst]")
        site = fields_[0].strip()
        if site not in CHAOS_SITES:
            raise ValueError(f"unknown chaos site {site!r} "
                             f"(known: {', '.join(CHAOS_SITES)})")
        try:
            rate = float(fields_[1])
            burst = int(fields_[2]) if len(fields_) == 3 else 1
        except ValueError:
            raise ValueError(
                f"bad chaos spec {part!r}: rate must be a float and "
                f"burst an int") from None
        specs.append(ChaosSpec(site, rate, burst))
    if not specs:
        raise ValueError(f"empty chaos spec: {text!r}")
    return specs


@dataclass(frozen=True)
class ChaosRecord:
    """One committed chaos fault (recorded at the moment it bit)."""

    chaos_id: int
    site: str
    shard: int
    clock: int
    detail: str = ""


class ChaosInjector:
    """Seeded process-level fault source bound to one supervisor run.

    The supervisor calls :meth:`on_segment` once per segment (kills and
    stalls fire there) and routes every received frame through
    :meth:`intercept` (drop/dup/reorder/poison apply there).  Only
    *committed* faults produce records — an armed message fault that
    never saw a frame to mangle never happened.
    """

    def __init__(self, specs: Sequence[ChaosSpec] | str,
                 seed: int = 0) -> None:
        if isinstance(specs, str):
            specs = parse_chaos_spec(specs)
        self.specs = list(specs)
        self.rng = random.Random(f"chaos:{seed}")
        self.records: List[ChaosRecord] = []
        self._pending: Dict[int, Deque[str]] = defaultdict(deque)
        self._held: Dict[int, str] = {}
        self._chaos_id = 0
        self._supervisor: Optional[ShardSupervisor] = None

    @property
    def committed(self) -> int:
        return len(self.records)

    def _record(self, site: str, shard: int, detail: str = "") -> None:
        self._chaos_id += 1
        tracer = (self._supervisor.tracer if self._supervisor is not None
                  else None)
        clock = getattr(tracer, "clock", 0)
        record = ChaosRecord(self._chaos_id, site, shard, clock, detail)
        self.records.append(record)
        if tracer is not None:
            tracer.emit("chaos_injected", site=site, shard=shard,
                        chaos_id=record.chaos_id)

    def on_segment(self, supervisor: ShardSupervisor) -> None:
        """Roll every armed site once for this segment."""
        self._supervisor = supervisor
        for spec in self.specs:
            if self.rng.random() >= spec.rate:
                continue
            for _ in range(max(1, spec.burst)):
                self._fire(spec.site, supervisor)

    def _fire(self, site: str, supervisor: ShardSupervisor) -> None:
        live = [shard for shard in supervisor.shards
                if shard.result_text is None and shard.process is not None
                and shard.process.is_alive()]
        if not live:
            return
        shard = self.rng.choice(live)
        if site == "kill":
            shard.process.kill()
            self._record(site, shard.id)
        elif site == "stall-heartbeat":
            # Enough to cross the deadline when the supervisor is
            # watching; a stall it never waits out is masked, not
            # silent (module docstring).
            seconds = supervisor.config.heartbeat_timeout_s * 2.5
            supervisor.send_stall(shard.id, seconds)
            self._record(site, shard.id, detail=f"{seconds:.2f}s")
        else:
            # Message sites arm here and commit in intercept(), when a
            # frame actually exists to mangle.
            self._pending[shard.id].append(site)

    def intercept(self, shard_id: int, raw: str) -> List[str]:
        """Apply pending message chaos to one received frame.

        Returns the frames to deliver in order (possibly none — drop
        and the holding half of reorder — or two — dup, and the
        releasing half of reorder).
        """
        held = self._held.pop(shard_id, None)
        pending = self._pending.get(shard_id)
        site = pending.popleft() if pending else None
        if site == "drop" and '"kind":"hello"' in raw:
            # Nothing awaits the handshake frame, so dropping it could
            # never be observed; keep the drop armed for the next
            # awaited data frame instead.
            pending.appendleft(site)
            site = None
        if held is not None and site is not None and site != "dup":
            # The frame releasing a held one must itself be delivered:
            # destroying it (drop/poison) or holding it too would put
            # the held frame back in sequence order and void the
            # reorder's observable.  Defer the new fault one frame.
            pending.appendleft(site)
            site = None
        if site == "drop":
            self._record("drop", shard_id)
            out: List[str] = []
        elif site == "dup":
            self._record("dup", shard_id)
            out = [raw, raw]
        elif site == "poison":
            self._record("poison", shard_id)
            out = [raw[:-1] + "~" if raw else "~"]
        elif site == "reorder":
            self._record("reorder", shard_id)
            self._held[shard_id] = raw
            out = []
        else:
            out = [raw]
        if held is not None:
            out.append(held)   # the held frame lands *after* a newer one
        return out


def _matches_shard(events, names: Tuple[str, ...], shard: int,
                   clock: int) -> bool:
    """Shard-scoped twin of ``repro.inject.campaign.matches``: is there
    an event in ``names`` for this shard at or after ``clock``?"""
    for event in events:
        if event.name not in names or event.clock < clock:
            continue
        if (event.args or {}).get("shard") != shard:
            continue
        return True
    return False


@dataclass
class ChaosCellOutcome:
    """Reconciled outcome of one (shard count, kill rate) cell."""

    shards: int
    kill_rate: float
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    masked: int = 0
    silent: int = 0
    #: Chaosed merged result differed from the unchaosed baseline —
    #: the one outcome the campaign exists to rule out.
    divergent: bool = False
    respawns: int = 0
    error: str = ""
    #: chaos_id -> ("detected"/"recovered"/"masked"/"silent")
    outcomes: Dict[int, str] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        return {"shards": self.shards, "kill_rate": self.kill_rate,
                "injected": self.injected, "detected": self.detected,
                "recovered": self.recovered, "masked": self.masked,
                "silent": self.silent, "divergent": self.divergent,
                "respawns": self.respawns, "error": self.error}


def reconcile_chaos(records: Sequence[ChaosRecord],
                    events) -> ChaosCellOutcome:
    """Classify every chaos record against the supervisor trace."""
    outcome = ChaosCellOutcome(shards=0, kill_rate=0.0)
    for record in records:
        outcome.injected += 1
        detected = _matches_shard(events, _DETECT[record.site],
                                  record.shard, record.clock)
        recovered = detected and _matches_shard(
            events, _RECOVER[record.site], record.shard, record.clock)
        if detected:
            outcome.detected += 1
            if recovered:
                outcome.recovered += 1
            outcome.outcomes[record.chaos_id] = (
                "recovered" if recovered else "detected")
        elif record.site in _PRESSURE_SITES:
            outcome.masked += 1
            outcome.outcomes[record.chaos_id] = "masked"
        else:
            outcome.silent += 1
            outcome.outcomes[record.chaos_id] = "silent"
    return outcome


def chaos_cell(n_shards: int, kill_rate: float,
               message_spec: str = DEFAULT_MESSAGE_CHAOS,
               benchmarks: Sequence[str] = ("gcc", "mcf"),
               system: str = "compresso", seed: int = 0,
               n_events: int = 600, scale: float = 0.02,
               segment_steps: int = 150,
               heartbeat_timeout_s: float = 1.5) -> ChaosCellOutcome:
    """One chaosed sharded run, reconciled against its own baseline.

    The baseline is the *single-process* ``simulate_multicore`` result:
    the chaosed, killed, replayed, N-shard run must merge to the exact
    same canonical payload.
    """
    profiles = [get_profile(name) for name in benchmarks]
    sim = SimulationConfig(n_events=n_events, scale=scale, seed=seed)
    baseline_text = canonical_json(
        result_payload(simulate_multicore(profiles, system, sim)))

    spec_text = f"kill:{kill_rate}"
    if message_spec:
        spec_text += f",{message_spec}"
    injector = ChaosInjector(parse_chaos_spec(spec_text), seed=seed)
    tracer = Tracer()
    config = ShardRunConfig(segment_steps=segment_steps,
                            heartbeat_timeout_s=heartbeat_timeout_s,
                            ping_retries=1, max_respawns=32)
    divergent = False
    error = ""
    supervisor = None
    with tempfile.TemporaryDirectory(prefix="chaos-cell-") as run_dir:
        supervisor = ShardSupervisor(
            profiles, system, dataclasses.replace(sim, shards=n_shards),
            n_shards, config=config, run_dir=run_dir, tracer=tracer,
            chaos=injector)
        try:
            result = supervisor.run()
            divergent = (canonical_json(result_payload(result))
                         != baseline_text)
        except ShardDivergenceError as exc:
            divergent = True
            error = str(exc)
        except ShardError as exc:
            error = str(exc)
        finally:
            supervisor.close()

    outcome = reconcile_chaos(injector.records, tracer.events)
    outcome.shards = n_shards
    outcome.kill_rate = kill_rate
    outcome.divergent = divergent
    outcome.error = error
    outcome.respawns = sum(shard.respawns for shard in supervisor.shards)
    return outcome


class ChaosCampaign:
    """Sweep kill-rate x shard-count; every cell must come back clean.

    The driver behind ``python -m repro.analysis chaos``
    (docs/SHARDING.md): across shard counts and kill rates (with
    message-path chaos mixed into every cell), the deliverable is
    **zero silent faults and zero divergent cells** — every committed
    fault reconciles to a ``shard_*`` trace event, and every merged
    result is byte-identical to the unchaosed single-process run.
    """

    def __init__(self, shard_counts: Sequence[int] = (2, 4, 8),
                 kill_rates: Sequence[float] = (0.05, 0.2),
                 message_spec: str = DEFAULT_MESSAGE_CHAOS,
                 benchmarks: Sequence[str] = ("gcc", "mcf"),
                 system: str = "compresso", seed: int = 0,
                 n_events: int = 600, scale: float = 0.02,
                 segment_steps: int = 150,
                 heartbeat_timeout_s: float = 1.5) -> None:
        if message_spec:
            parse_chaos_spec(message_spec)   # validate sites up front
        self.shard_counts = tuple(shard_counts)
        self.kill_rates = tuple(kill_rates)
        self.message_spec = message_spec
        self.benchmarks = tuple(benchmarks)
        self.system = system
        self.seed = seed
        self.n_events = n_events
        self.scale = scale
        self.segment_steps = segment_steps
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.cells: List[ChaosCellOutcome] = []

    def run(self) -> List[ChaosCellOutcome]:
        """Run every (shard count, kill rate) cell; cached on self."""
        self.cells = [
            chaos_cell(n_shards, rate, message_spec=self.message_spec,
                       benchmarks=self.benchmarks, system=self.system,
                       seed=self.seed, n_events=self.n_events,
                       scale=self.scale, segment_steps=self.segment_steps,
                       heartbeat_timeout_s=self.heartbeat_timeout_s)
            for n_shards in self.shard_counts for rate in self.kill_rates
        ]
        return self.cells

    @property
    def silent_faults(self) -> int:
        return sum(cell.silent for cell in self.cells)

    @property
    def divergent_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.divergent)

    @property
    def clean(self) -> bool:
        return (self.silent_faults == 0 and self.divergent_cells == 0
                and not any(cell.error for cell in self.cells))

    def rows(self) -> List[Dict[str, object]]:
        return [cell.as_row() for cell in self.cells]
