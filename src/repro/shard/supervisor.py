"""Shard supervisor: heartbeats, backpressure, quarantine, replay
(docs/SHARDING.md).

The supervisor owns the robustness contract of a sharded multicore
run.  It spawns one worker process per shard, drives all of them in
bounded segment windows (the command queue is bounded and the window
is ``max_inflight`` segments — backpressure, not unbounded buffering),
and treats every reply with suspicion: frames that fail schema
validation are quarantined as poison, stale and duplicate sequence
numbers are absorbed and counted, and a shard that misses its
heartbeat deadline is pinged, then killed, respawned from its spec,
and **replayed** from its journaled command log.  Replay is verified,
not assumed: every digest a replayed worker reports is compared
against the digest the run had already agreed on at that step, so a
recovery that failed to reach byte-identical state is a loud
``shard_divergence``, never silent.

Per-segment digests must agree across *all* shards (the control plane
is replicated — docs/SHARDING.md); the merged result is the N-way
agreed payload, byte-identical to the single-process
``simulate_multicore`` output.  Agreement checkpoints are persisted to
``supervisor.jsonl`` in the run directory, so a supervisor that dies
can itself be resumed (:meth:`ShardSupervisor.resume`) and its
replacement re-verifies the replayed prefix against the checkpoints
the dead supervisor had recorded.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import queue
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import NULL_TRACER
from ..runner.journal import read_journal
from ..simulation.multicore import MulticoreResult
from ..simulation.simulator import SimulationConfig
from ..workloads.profiles import get_profile
from .messages import (
    MessageLog,
    PoisonMessageError,
    SequenceTracker,
    decode_message,
    encode_message,
    make_message,
    quarantine_poison,
)
from .worker import ShardSpec, canonical_json, payload_to_result, shard_main

#: Seconds a killed worker gets to die before the join is abandoned
#: (mirrors the runner executor's death grace).
_DEATH_GRACE_S = 0.5

#: Sentinels returned by the raw receive path.
_TIMEOUT = object()
_DEAD = object()


class ShardError(RuntimeError):
    """A shard failed beyond what respawn-and-replay could absorb."""


class ShardDivergenceError(ShardError):
    """Replicated shard state disagreed — the run cannot be trusted."""


@dataclasses.dataclass
class ShardRunConfig:
    """Supervisor knobs for one sharded run (docs/SHARDING.md)."""

    #: Interleave steps per ``run`` command; heartbeats happen at these
    #: boundaries, so smaller segments mean finer-grained liveness.
    segment_steps: int = 512
    #: Wall-clock deadline for a shard's segment reply; a miss triggers
    #: the ping → kill → respawn → replay escalation.
    heartbeat_timeout_s: float = 30.0
    #: Pings after a missed deadline before the shard is declared hung.
    ping_retries: int = 1
    #: Respawn-and-replay attempts per shard before the run fails.
    max_respawns: int = 5
    #: Segments sent ahead of the last acknowledged one (the
    #: backpressure window).
    max_inflight: int = 1
    #: Command-queue bound; a full queue counts ``shard_backpressure``.
    queue_bound: int = 8
    #: Consistent-hash ring density (virtual nodes per shard).
    virtual_nodes: int = 64


class _ShardState:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, shard_id: int, log: MessageLog) -> None:
        self.id = shard_id
        self.log = log
        self.process: Optional[multiprocessing.Process] = None
        self.commands = None
        self.replies = None
        self.inbox: deque = deque()
        self.tracker = SequenceTracker()
        self.acked_steps = 0
        self.sent_until = 0
        self.finish_sent = False
        self.outstanding: deque = deque()
        self.result_text: Optional[str] = None
        self.respawns = 0
        self.command_seq = 0
        self.pinged = False
        self.pings = 0


class ShardSupervisor:
    """Drive one sharded multicore run to an agreed, merged result."""

    def __init__(self, profiles, system: str, sim: SimulationConfig,
                 n_shards: int, mix_name: str = "",
                 config: Optional[ShardRunConfig] = None,
                 run_dir: Optional[str] = None, tracer=None, journal=None,
                 chaos=None, worker=shard_main) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if getattr(sim, "sanitize", False) or getattr(sim, "faults", None):
            # Payload eliding is only sound when nothing re-reads line
            # bytes: the sanitizer and cycle-level fault recovery both
            # do (docs/SHARDING.md).
            raise ValueError(
                "sharded runs require sanitize=False and faults=None")
        self.benchmarks = [profile.name for profile in profiles]
        for name in self.benchmarks:
            get_profile(name)   # sharding requires registry-named profiles
        self.system = system
        self.sim = sim
        self.mix_name = mix_name or "+".join(self.benchmarks)
        self.n_shards = n_shards
        self.config = config or ShardRunConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal
        self.chaos = chaos
        self.worker = worker
        if run_dir is None:
            import tempfile
            run_dir = tempfile.mkdtemp(prefix="shard-run-")
        self.run_dir = Path(run_dir)
        self.total_steps = sim.n_events * len(self.benchmarks)
        self.shards = [
            _ShardState(i, MessageLog(self.run_dir / f"shard-{i}.log.jsonl"))
            for i in range(n_shards)
        ]
        self._digests: Dict[int, str] = {}
        self._load_checkpoints()

    # -- construction helpers ---------------------------------------------

    @classmethod
    def resume(cls, run_dir: str | Path,
               config: Optional[ShardRunConfig] = None, tracer=None,
               journal=None, worker=shard_main) -> "ShardSupervisor":
        """Rebuild a supervisor from a dead one's run directory.

        The shard specs and command logs persist across supervisor
        death; the new supervisor replays every shard to its recorded
        watermark (verified against the persisted agreement
        checkpoints) and then continues the run.
        """
        run_dir = Path(run_dir)
        logs = sorted(run_dir.glob("shard-*.log.jsonl"))
        if not logs:
            raise ShardError(f"no shard logs under {run_dir}")
        spec_dict, _ = MessageLog(logs[0]).read()
        if spec_dict is None:
            raise ShardError(f"{logs[0]} has no spec header")
        spec = ShardSpec(**spec_dict)
        profiles = [get_profile(name) for name in spec.benchmarks]
        return cls(profiles, spec.system, spec.build_sim(), spec.n_shards,
                   mix_name=spec.mix, config=config, run_dir=run_dir,
                   tracer=tracer, journal=journal, worker=worker)

    def _spec(self, shard_id: int) -> ShardSpec:
        sim_fields = dataclasses.asdict(self.sim)
        sim_fields["shards"] = 0
        return ShardSpec(shard_id=shard_id, n_shards=self.n_shards,
                         benchmarks=list(self.benchmarks),
                         system=self.system, mix=self.mix_name,
                         sim=sim_fields,
                         virtual_nodes=self.config.virtual_nodes)

    # flowcheck: boundary(journaled shard events are run provenance; simulated results never read them)
    def _journal(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal.event(event, **fields)

    def _load_checkpoints(self) -> None:
        path = self.run_dir / "supervisor.jsonl"
        if not path.exists():
            return
        for record in read_journal(path, skip_invalid=True):
            if "until" in record and "digest" in record:
                self._digests[int(record["until"])] = record["digest"]

    # flowcheck: boundary(agreement checkpoints are recovery provenance fsynced to disk; simulated results never read them)
    def _persist_checkpoint(self, until: int, digest: str) -> None:
        path = self.run_dir / "supervisor.jsonl"
        with path.open("a") as handle:
            handle.write(json.dumps({"until": until, "digest": digest},
                                    sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- process lifecycle -------------------------------------------------

    def _spawn(self, shard: _ShardState) -> None:
        shard.commands = multiprocessing.Queue(
            maxsize=self.config.queue_bound)
        shard.replies = multiprocessing.Queue()
        shard.inbox = deque()
        shard.tracker = SequenceTracker()
        shard.acked_steps = 0
        shard.pinged = False
        shard.pings = 0
        spec = self._spec(shard.id)
        existing_spec, _ = shard.log.read()
        if existing_spec is None:
            shard.log.write_spec(spec.as_dict())
        shard.process = multiprocessing.Process(
            target=self.worker,
            args=(spec.as_dict(), shard.commands, shard.replies),
            daemon=True)
        shard.process.start()
        self.tracer.emit("shard_spawn", shard=shard.id)
        replay = [command for command in shard.log.replayable()
                  if command["kind"] != "stop"]
        if replay:
            self.tracer.emit("shard_replay", shard=shard.id,
                             replayed=len(replay))
            for command in replay:
                shard.commands.put(encode_message(command))
            runs = [c["until"] for c in replay if c["kind"] == "run"]
            shard.sent_until = max(runs, default=0)
            shard.finish_sent = any(c["kind"] == "finish" for c in replay)
            shard.outstanding = deque(
                [shard.sent_until] if shard.sent_until else [])

    def _spawn_all(self) -> None:
        for shard in self.shards:
            self._spawn(shard)

    def _kill(self, shard: _ShardState) -> None:
        process = shard.process
        if process is not None and process.is_alive():
            process.kill()
            self.tracer.emit("shard_kill", shard=shard.id)
        if process is not None:
            process.join(_DEATH_GRACE_S)

    def close(self) -> None:
        """Stop (or kill) every worker; safe to call repeatedly."""
        for shard in self.shards:
            process = shard.process
            if process is None:
                continue
            if process.is_alive():
                try:
                    self._post(shard, make_message(
                        "stop", self._next_seq(shard)), journal=False)
                except (OSError, ValueError):
                    # Queue already torn down under the worker; the
                    # unconditional kill below is the stop path then.
                    self.tracer.emit("shard_kill", shard=shard.id)
                process.join(_DEATH_GRACE_S)
            if process.is_alive():
                process.kill()
                process.join(_DEATH_GRACE_S)
            shard.process = None

    def _recover(self, shard: _ShardState) -> None:
        """Kill → respawn → replay; digest checks verify the replay."""
        if shard.respawns >= self.config.max_respawns:
            raise ShardError(
                f"shard {shard.id} exceeded {self.config.max_respawns} "
                f"respawns")
        shard.respawns += 1
        self._kill(shard)
        self.tracer.emit("shard_respawn", shard=shard.id,
                         respawns=shard.respawns)
        self._spawn(shard)
        self._journal("shard_recover", shard=shard.id,
                      respawns=shard.respawns,
                      replayed=len(shard.log.replayable()))

    # -- messaging ---------------------------------------------------------

    def _next_seq(self, shard: _ShardState) -> int:
        shard.command_seq += 1
        return shard.command_seq

    def _post(self, shard: _ShardState, message: Dict[str, object],
              chaos: bool = False, journal: bool = True) -> None:
        """Journal (log-ahead), then send with backpressure accounting."""
        if journal:
            shard.log.log_command(message, chaos=chaos)
        text = encode_message(message)
        try:
            shard.commands.put_nowait(text)
        except queue.Full:
            self.tracer.emit("shard_backpressure", shard=shard.id)
            shard.commands.put(text)

    def send_stall(self, shard_id: int, seconds: float) -> None:
        """Chaos entry point: delay one shard's heartbeat (stripped on
        replay — the directive is journaled with ``chaos: true``)."""
        shard = self.shards[shard_id]
        self._post(shard, make_message("stall", self._next_seq(shard),
                                       seconds=seconds), chaos=True)

    # flowcheck: boundary(wall-clock deadlines steer recovery scheduling only; shard state is pinned byte-identical by replay digests)
    def _receive_raw(self, shard: _ShardState):
        """One frame from the shard, through the chaos interceptor.

        Polls in short slices so a SIGKILLed worker is noticed in
        ~100 ms instead of after the full heartbeat deadline; returns
        ``_TIMEOUT`` on a missed deadline and ``_DEAD`` when the
        process is gone and its queue is drained.
        """
        deadline = time.monotonic() + self.config.heartbeat_timeout_s
        while True:
            if shard.inbox:
                return shard.inbox.popleft()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return _TIMEOUT
            try:
                raw = shard.replies.get(timeout=min(0.1, remaining))
            except queue.Empty:
                if (shard.process is not None
                        and not shard.process.is_alive()
                        and shard.replies.empty()):
                    return _DEAD
                continue
            if self.chaos is not None:
                shard.inbox.extend(self.chaos.intercept(shard.id, raw))
            else:
                shard.inbox.append(raw)

    def _next_reply(self, shard: _ShardState) -> Dict[str, object]:
        """Next validated reply; absorbs poison, timeouts and death."""
        while True:
            raw = self._receive_raw(shard)
            if raw is _DEAD:
                self.tracer.emit("shard_exit", shard=shard.id)
                self._recover(shard)
                continue
            if raw is _TIMEOUT:
                self.tracer.emit("shard_heartbeat_miss", shard=shard.id)
                if shard.pinged and not self._pings_left(shard):
                    self._recover(shard)
                    continue
                self._ping(shard)
                continue
            try:
                message = decode_message(raw)
            except PoisonMessageError as exc:
                quarantine_poison(self.run_dir / "quarantine.jsonl", raw,
                                  str(exc), shard.id)
                self.tracer.emit("shard_quarantine", shard=shard.id)
                self._ping(shard)
                continue
            if shard.pinged and message["kind"] in ("progress", "result"):
                self.tracer.emit("shard_resend", shard=shard.id)
            shard.pinged = False
            shard.pings = 0
            return message

    def _ping(self, shard: _ShardState) -> None:
        shard.pings += 1
        shard.pinged = True
        self._post(shard, make_message("ping", self._next_seq(shard)))

    def _pings_left(self, shard: _ShardState) -> bool:
        return shard.pings <= self.config.ping_retries

    # -- protocol ----------------------------------------------------------

    def _check_digest(self, shard: _ShardState, steps: int,
                      digest: str) -> None:
        agreed = self._digests.get(steps)
        if agreed is None:
            self._digests[steps] = digest
            self._persist_checkpoint(steps, digest)
        elif agreed != digest:
            self.tracer.emit("shard_divergence", shard=shard.id,
                             steps=steps)
            raise ShardDivergenceError(
                f"shard {shard.id} diverged at step {steps}: "
                f"{digest[:12]} != agreed {agreed[:12]}")

    def _handle(self, shard: _ShardState,
                message: Dict[str, object]) -> None:
        kind = message["kind"]
        if kind == "error":
            raise ShardError(
                f"shard {shard.id} reported: {message['message']}")
        order = shard.tracker.classify(message["seq"])
        if order == "duplicate":
            self.tracer.emit("shard_msg_dup", shard=shard.id)
            return
        if order == "stale":
            self.tracer.emit("shard_msg_reorder", shard=shard.id)
            return
        if kind == "hello":
            return
        if kind == "progress":
            # In-run state agreement; the final payload gets its own
            # N-way byte comparison instead (finish() flushes metadata,
            # so the post-finish digest is a different quantity).
            self._check_digest(shard, message["steps"], message["digest"])
        shard.acked_steps = max(shard.acked_steps, message["steps"])
        if kind == "result":
            shard.result_text = canonical_json(message["payload"])
            self.tracer.emit("shard_result", shard=shard.id,
                             steps=message["steps"])

    def _fill_window(self, shard: _ShardState) -> None:
        while (len(shard.outstanding) < self.config.max_inflight
               and shard.sent_until < self.total_steps):
            until = min(self.total_steps,
                        shard.sent_until + self.config.segment_steps)
            self._post(shard, make_message("run", self._next_seq(shard),
                                           until=until))
            shard.sent_until = until
            shard.outstanding.append(until)
        if shard.sent_until >= self.total_steps and not shard.finish_sent:
            self._post(shard, make_message("finish",
                                           self._next_seq(shard)))
            shard.finish_sent = True

    def _drain_acked(self, shard: _ShardState) -> None:
        while shard.outstanding and shard.acked_steps >= shard.outstanding[0]:
            shard.outstanding.popleft()

    def _pump(self, shard: _ShardState) -> None:
        """Consume replies until the oldest outstanding segment (and,
        after ``finish``, the result) is accounted for."""
        self._drain_acked(shard)
        while shard.outstanding or (shard.finish_sent
                                    and shard.result_text is None):
            self._handle(shard, self._next_reply(shard))
            self._drain_acked(shard)

    def _drain_residual(self, shard: _ShardState) -> None:
        """Account for frames still in flight after the result landed.

        A duplicated or reorder-held frame released behind the final
        result would otherwise sit unobserved in the channel; draining
        it here keeps the chaos ledger honest — every committed
        message fault gets its ``shard_msg_*`` observation event.
        """
        while True:
            if not shard.inbox:
                try:
                    raw = shard.replies.get(timeout=0.05)
                except queue.Empty:
                    return
                if self.chaos is not None:
                    shard.inbox.extend(self.chaos.intercept(shard.id, raw))
                else:
                    shard.inbox.append(raw)
                continue
            raw = shard.inbox.popleft()
            try:
                message = decode_message(raw)
            except PoisonMessageError as exc:
                quarantine_poison(self.run_dir / "quarantine.jsonl", raw,
                                  str(exc), shard.id)
                self.tracer.emit("shard_quarantine", shard=shard.id)
                continue
            if message["kind"] == "error":
                continue
            order = shard.tracker.classify(message["seq"])
            if order == "duplicate":
                self.tracer.emit("shard_msg_dup", shard=shard.id)
            elif order == "stale":
                self.tracer.emit("shard_msg_reorder", shard=shard.id)

    def _sweep_dead(self) -> None:
        """Notice workers that died *after* their final reply.

        No recovery is needed — the result is already agreed — but the
        exit must still be observed, or a kill landing in the gap
        between the last reply and ``stop`` would be a silent fault.
        """
        for shard in self.shards:
            if shard.process is not None and not shard.process.is_alive():
                self.tracer.emit("shard_exit", shard=shard.id)

    def run(self) -> MulticoreResult:
        """Drive the sharded run to its merged, agreed result."""
        self._journal("shard_run_start", shards=self.n_shards,
                      mix=self.mix_name, system=self.system,
                      total_steps=self.total_steps)
        try:
            self._spawn_all()
            segment = 0
            while any(shard.result_text is None for shard in self.shards):
                segment += 1
                self.tracer.tick()
                if self.chaos is not None:
                    self.chaos.on_segment(self)
                for shard in self.shards:
                    if shard.result_text is None:
                        self._fill_window(shard)
                for shard in self.shards:
                    if shard.result_text is None:
                        self._pump(shard)
            for shard in self.shards:
                self._drain_residual(shard)
            self._sweep_dead()
            agreed = self.shards[0].result_text
            for shard in self.shards[1:]:
                if shard.result_text != agreed:
                    self.tracer.emit("shard_divergence", shard=shard.id,
                                     steps=self.total_steps)
                    raise ShardDivergenceError(
                        f"shard {shard.id} result payload disagrees with "
                        f"shard 0")
            digest = self._digests.get(self.total_steps, "")
            self._journal("shard_run_end", shards=self.n_shards,
                          agreed=True, digest=digest)
            return payload_to_result(json.loads(agreed))
        finally:
            self.close()


def simulate_multicore_sharded(profiles, system: str,
                               sim: SimulationConfig, mix_name: str = "",
                               config: Optional[ShardRunConfig] = None,
                               run_dir: Optional[str] = None, tracer=None,
                               journal=None, chaos=None) -> MulticoreResult:
    """Sharded twin of ``simulate_multicore`` (docs/SHARDING.md).

    Spawns ``sim.shards`` supervised workers and returns the merged,
    N-way-agreed result — byte-identical headline metrics to the
    single-process path.
    """
    n_shards = int(getattr(sim, "shards", 0)) or 1
    supervisor = ShardSupervisor(profiles, system, sim, n_shards,
                                 mix_name=mix_name, config=config,
                                 run_dir=run_dir, tracer=tracer,
                                 journal=journal, chaos=chaos,
                                 worker=shard_main)
    return supervisor.run()
